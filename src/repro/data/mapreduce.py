"""A MapReduce engine over the simulated DFS.

Implements the full Hadoop-style execution model the paper points to for
"ad hoc development and investigations" on "large distributed file space"
(§II): block-aligned input splits, map tasks, optional combiners, a
hash/range-partitioned shuffle with sorted, grouped reduce input, and
counters.  Execution is single-process; per-task wall times are recorded
so the harness can compute the makespan a ``w``-worker cluster would
achieve under LPT (longest-processing-time-first) scheduling — this is
how experiment E7's worker-count sweep is produced on one core.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.data.columnar import ColumnTable
from repro.data.dfs import SimDfs
from repro.data.partition import hash_partition
from repro.data.serialization import unpack_table
from repro.errors import MapReduceError

__all__ = ["MapReduceJob", "JobResult", "MapReduceRuntime", "lpt_makespan"]

#: A mapper takes (split_index, block table) and yields (key, value) pairs.
Mapper = Callable[[int, ColumnTable], Iterable[tuple[object, object]]]
#: A reducer takes (key, list of values) and yields (key, value) pairs.
Reducer = Callable[[object, list], Iterable[tuple[object, object]]]
#: A combiner has the reducer signature and runs on map-local output.
Combiner = Reducer


@dataclass(frozen=True)
class MapReduceJob:
    """Specification of one job.

    Attributes
    ----------
    mapper, reducer:
        User functions (see module type aliases).
    combiner:
        Optional map-side pre-aggregation; must be algebraically compatible
        with the reducer (same contract as Hadoop combiners).
    n_reducers:
        Number of reduce partitions.
    partitioner:
        ``(key, n_buckets) -> bucket``; defaults to stable hashing.
    """

    mapper: Mapper
    reducer: Reducer
    combiner: Combiner | None = None
    n_reducers: int = 4
    partitioner: Callable[[object, int], int] = hash_partition

    def __post_init__(self):
        if self.n_reducers <= 0:
            raise MapReduceError(f"n_reducers must be positive, got {self.n_reducers}")


@dataclass
class JobResult:
    """Output and execution record of one job run."""

    pairs: list[tuple[object, object]]
    counters: dict[str, int] = field(default_factory=dict)
    map_task_seconds: list[float] = field(default_factory=list)
    reduce_task_seconds: list[float] = field(default_factory=list)

    def as_dict(self) -> dict:
        """Output pairs as a dict (keys must then be unique)."""
        out = dict(self.pairs)
        if len(out) != len(self.pairs):
            raise MapReduceError("duplicate keys in job output; use .pairs")
        return out

    def makespan(self, n_workers: int) -> float:
        """Simulated wall time on ``n_workers`` parallel workers.

        Map and reduce phases are barriers (as in Hadoop without slow-start):
        the job's makespan is the LPT makespan of the map tasks plus that of
        the reduce tasks.
        """
        return lpt_makespan(self.map_task_seconds, n_workers) + lpt_makespan(
            self.reduce_task_seconds, n_workers
        )


def lpt_makespan(task_seconds: Sequence[float], n_workers: int) -> float:
    """Makespan of greedy longest-processing-time-first scheduling."""
    if n_workers <= 0:
        raise MapReduceError(f"n_workers must be positive, got {n_workers}")
    loads = [0.0] * min(n_workers, max(len(task_seconds), 1))
    for t in sorted(task_seconds, reverse=True):
        i = loads.index(min(loads))
        loads[i] += t
    return max(loads) if loads else 0.0


class MapReduceRuntime:
    """Executes :class:`MapReduceJob` instances against a :class:`SimDfs`."""

    def __init__(self, dfs: SimDfs) -> None:
        self.dfs = dfs

    def run(self, job: MapReduceJob, input_path: str,
            output_path: str | None = None) -> JobResult:
        """Run ``job`` over the table file at ``input_path``.

        Each DFS block of the input file becomes one input split / map
        task.  If ``output_path`` is given, reducer output is written back
        to the DFS as one packed two-column table (repr'd key, float value)
        per reducer — callers with richer outputs read ``result.pairs``.
        """
        blocks = self.dfs.file_blocks(input_path)
        counters = {
            "map_input_records": 0,
            "map_output_records": 0,
            "combine_output_records": 0,
            "shuffle_bytes": 0,
            "reduce_input_groups": 0,
            "reduce_output_records": 0,
        }
        result = JobResult(pairs=[], counters=counters)

        # -- map phase (+ optional combine) ------------------------------
        partitions: list[dict[object, list]] = [
            {} for _ in range(job.n_reducers)
        ]
        for split_index, info in enumerate(blocks):
            t0 = time.perf_counter()
            table = unpack_table(self.dfs.read_block(info.block_id))
            counters["map_input_records"] += table.n_rows
            local: dict[object, list] = {}
            for key, value in job.mapper(split_index, table):
                counters["map_output_records"] += 1
                local.setdefault(key, []).append(value)
            if job.combiner is not None:
                combined: dict[object, list] = {}
                for key, values in local.items():
                    for k2, v2 in job.combiner(key, values):
                        combined.setdefault(k2, []).append(v2)
                        counters["combine_output_records"] += 1
                local = combined
            for key, values in local.items():
                bucket = job.partitioner(key, job.n_reducers)
                if not (0 <= bucket < job.n_reducers):
                    raise MapReduceError(
                        f"partitioner returned {bucket} for {job.n_reducers} reducers"
                    )
                partitions[bucket].setdefault(key, []).extend(values)
                counters["shuffle_bytes"] += _rough_size(key, values)
            result.map_task_seconds.append(time.perf_counter() - t0)

        # -- reduce phase --------------------------------------------------
        reducer_outputs: list[list[tuple[object, object]]] = []
        for bucket in partitions:
            t0 = time.perf_counter()
            out: list[tuple[object, object]] = []
            for key in sorted(bucket, key=repr):  # sorted reduce input, as in Hadoop
                counters["reduce_input_groups"] += 1
                for pair in job.reducer(key, bucket[key]):
                    out.append(pair)
                    counters["reduce_output_records"] += 1
            reducer_outputs.append(out)
            result.reduce_task_seconds.append(time.perf_counter() - t0)

        result.pairs = [p for out in reducer_outputs for p in out]
        if output_path is not None:
            self._write_output(output_path, reducer_outputs)
        return result

    def _write_output(self, path: str,
                      reducer_outputs: list[list[tuple[object, object]]]) -> None:
        import numpy as np

        from repro.data.schema import Schema

        schema = Schema([("key", np.int64), ("value", np.float64)])
        flat = [p for out in reducer_outputs for p in out]
        try:
            keys = np.array([int(k) for k, _ in flat], dtype=np.int64)
            values = np.array([float(v) for _, v in flat], dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise MapReduceError(
                "DFS output requires int-keyed float-valued results; "
                "read result.pairs instead"
            ) from exc
        table = ColumnTable.from_arrays(schema, key=keys, value=values)
        self.dfs.write_table(path, table, rows_per_block=max(table.n_rows, 1))


def _rough_size(key, values: list) -> int:
    """Cheap estimate of shuffled bytes for one (key, values) group."""
    return 16 + 8 * len(values)
