"""On-disk chunk store for out-of-core tables.

Stage 2 at paper scale cannot hold the YELT in memory; the scan path then
runs over disk-resident chunks.  :class:`ChunkStore` persists a table as
one packed file per chunk inside a directory, and replays it as a chunk
iterator compatible with :class:`repro.data.stream.TableScan`'s
contract (one bounded chunk in memory at a time).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterator

from repro.data.chunk import plan_chunks
from repro.data.columnar import ColumnTable
from repro.data.serialization import pack_table, unpack_table
from repro.errors import StorageError

__all__ = ["ChunkStore"]


class ChunkStore:
    """A directory of packed table chunks.

    Parameters
    ----------
    root:
        Directory that holds one subdirectory per stored table.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _table_dir(self, name: str) -> Path:
        if not name or "/" in name or name.startswith("."):
            raise StorageError(f"invalid table name {name!r}")
        return self.root / name

    def write_table(self, name: str, table: ColumnTable, rows_per_chunk: int) -> int:
        """Persist ``table`` as chunk files; returns the chunk count."""
        tdir = self._table_dir(name)
        if tdir.exists():
            raise StorageError(f"table {name!r} already stored")
        tdir.mkdir()
        specs = plan_chunks(table.n_rows, rows_per_chunk)
        if not specs:
            (tdir / "chunk-000000.rpt").write_bytes(pack_table(table))
            return 1
        for spec in specs:
            chunk = table.slice(spec.start, spec.stop)
            (tdir / f"chunk-{spec.index:06d}.rpt").write_bytes(pack_table(chunk))
        return len(specs)

    def list_tables(self) -> list[str]:
        return sorted(p.name for p in self.root.iterdir() if p.is_dir())

    def chunk_paths(self, name: str) -> list[Path]:
        tdir = self._table_dir(name)
        if not tdir.exists():
            raise StorageError(f"no stored table {name!r}")
        return sorted(tdir.glob("chunk-*.rpt"))

    def iter_chunks(self, name: str) -> Iterator[ColumnTable]:
        """Stream the stored chunks in order (one in memory at a time)."""
        for path in self.chunk_paths(name):
            yield unpack_table(path.read_bytes())

    def read_table(self, name: str) -> ColumnTable:
        """Materialise the whole table (tests / small tables only)."""
        chunks = list(self.iter_chunks(name))
        return ColumnTable.concat(chunks)

    def delete_table(self, name: str) -> None:
        tdir = self._table_dir(name)
        if not tdir.exists():
            raise StorageError(f"no stored table {name!r}")
        for path in tdir.iterdir():
            path.unlink()
        tdir.rmdir()

    def stored_bytes(self, name: str) -> int:
        return sum(p.stat().st_size for p in self.chunk_paths(name))
