"""Parallel data-warehouse style pre-aggregation over YLTs.

Stage 3 of the pipeline faces YLT collections that "easily result in
terabytes of data"; the paper's remedy is that *"pre-computation
techniques such as in parallel data warehousing can be applied"* (§II).
:class:`LossCube` implements the core of that idea: annual losses are
pre-aggregated per dimension cell (e.g. line-of-business × region ×
peril), so that any slice-and-dice query — "PML at 250 years for all US
wind business" — is answered by summing a handful of per-cell trial
vectors instead of rescanning the raw YELT.  Experiment E10 benchmarks
cube queries against recomputation from the base table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.data.columnar import ColumnTable
from repro.errors import AnalysisError, ConfigurationError
from repro.util import stats_utils

__all__ = ["CubeQuery", "LossCube"]


@dataclass(frozen=True)
class CubeQuery:
    """A slice of the cube: fixed values for some dimensions, free others.

    ``filters`` maps dimension name → required value; unmentioned
    dimensions are aggregated over.
    """

    filters: Mapping[str, int]


class LossCube:
    """Pre-aggregated (dimensions → per-trial annual loss) cube.

    Parameters
    ----------
    table:
        Base fact table with one row per (trial, dims..., loss) event-year
        contribution — typically a YLT that retained dimension columns.
    dims:
        Names of the integer dimension columns.
    n_trials:
        Total number of simulated trial years (defines vector length; trials
        with no losses in a cell are zero, as required for quantiles).
    trial_column, loss_column:
        Column names for the trial index and the loss amount.
    """

    def __init__(
        self,
        table: ColumnTable,
        dims: Sequence[str],
        n_trials: int,
        trial_column: str = "trial",
        loss_column: str = "loss",
    ) -> None:
        if n_trials <= 0:
            raise ConfigurationError(f"n_trials must be positive, got {n_trials}")
        if not dims:
            raise ConfigurationError("cube needs at least one dimension")
        for name in (*dims, trial_column, loss_column):
            if name not in table.schema:
                raise ConfigurationError(f"column {name!r} missing from fact table")
        self.dims = tuple(dims)
        self.n_trials = n_trials
        trials = table[trial_column]
        if trials.size and (trials.min() < 0 or trials.max() >= n_trials):
            raise ConfigurationError("trial indices out of range for n_trials")
        losses = table[loss_column].astype(np.float64, copy=False)

        # Build a composite cell key, then one dense per-trial vector per cell.
        dim_cols = [table[d].astype(np.int64, copy=False) for d in dims]
        for name, col in zip(dims, dim_cols):
            if col.size and col.min() < 0:
                raise ConfigurationError(f"dimension {name!r} has negative codes")
        self._cells: dict[tuple[int, ...], np.ndarray] = {}
        if table.n_rows:
            keys = np.stack(dim_cols, axis=1)
            # lexicographic sort groups rows by cell
            order = np.lexsort(tuple(keys[:, i] for i in range(keys.shape[1] - 1, -1, -1)))
            keys = keys[order]
            t_sorted = trials[order]
            l_sorted = losses[order]
            change = np.any(np.diff(keys, axis=0) != 0, axis=1)
            starts = np.concatenate(([0], np.nonzero(change)[0] + 1, [keys.shape[0]]))
            for a, b in zip(starts[:-1], starts[1:]):
                cell = tuple(int(v) for v in keys[a])
                vec = np.zeros(n_trials, dtype=np.float64)
                np.add.at(vec, t_sorted[a:b], l_sorted[a:b])
                self._cells[cell] = vec

    # -- introspection ------------------------------------------------------

    @property
    def n_cells(self) -> int:
        return len(self._cells)

    @property
    def nbytes(self) -> int:
        """Memory footprint of the materialised cube."""
        return sum(v.nbytes for v in self._cells.values())

    def cells(self) -> list[tuple[int, ...]]:
        return sorted(self._cells)

    # -- queries ---------------------------------------------------------------

    def annual_losses(self, query: CubeQuery | Mapping[str, int] | None = None) -> np.ndarray:
        """Per-trial annual losses for a slice (sum of matching cells)."""
        filters = dict(query.filters) if isinstance(query, CubeQuery) else dict(query or {})
        unknown = set(filters) - set(self.dims)
        if unknown:
            raise AnalysisError(f"unknown cube dimensions: {sorted(unknown)}")
        positions = {d: i for i, d in enumerate(self.dims)}
        out = np.zeros(self.n_trials, dtype=np.float64)
        matched = False
        for cell, vec in self._cells.items():
            if all(cell[positions[d]] == v for d, v in filters.items()):
                out += vec
                matched = True
        if filters and not matched:
            # An empty slice is a legitimate zero-loss answer, but flag the
            # fully-absent combination loudly in the common misquery case.
            return out
        return out

    def pml(self, return_period_years: float,
            query: CubeQuery | Mapping[str, int] | None = None) -> float:
        """Probable Maximum Loss at a return period, for a cube slice."""
        return stats_utils.return_period_loss(self.annual_losses(query), return_period_years)

    def tvar(self, q: float, query: CubeQuery | Mapping[str, int] | None = None) -> float:
        """Tail value-at-risk at level ``q``, for a cube slice."""
        return stats_utils.tail_expectation(self.annual_losses(query), q)
