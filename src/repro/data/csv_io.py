"""CSV interchange for the pipeline tables.

Production risk systems exchange ELTs and YLTs as delimited files (the
paper's "exposure databases" and "event loss tables" arrive from
modelling vendors).  This module reads/writes :class:`ColumnTable`
objects against CSV with schema-driven parsing — no pandas dependency,
streaming-friendly, and strict about malformed rows (silent coercion of
a loss column is how portfolios end up mispriced).
"""

from __future__ import annotations

import csv
import io
import os
from pathlib import Path

import numpy as np

from repro.data.columnar import ColumnTable
from repro.data.schema import Schema
from repro.errors import SchemaError, StorageError

__all__ = ["write_csv", "read_csv", "table_to_csv_text", "table_from_csv_text"]


def table_to_csv_text(table: ColumnTable) -> str:
    """Render a table as CSV text (header row + one line per record)."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(table.schema.names)
    columns = [table[name] for name in table.schema.names]
    for i in range(table.n_rows):
        writer.writerow([_render(col[i]) for col in columns])
    return buf.getvalue()


def _render(value) -> str:
    if isinstance(value, np.floating):
        return repr(float(value))
    return str(value)


def table_from_csv_text(text: str, schema: Schema) -> ColumnTable:
    """Parse CSV text against ``schema`` (header must match exactly)."""
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise StorageError("empty CSV input") from None
    if tuple(header) != schema.names:
        raise SchemaError(
            f"CSV header {header} does not match schema {list(schema.names)}"
        )
    raw_rows = list(reader)
    columns = {name: [] for name in schema.names}
    for lineno, row in enumerate(raw_rows, start=2):
        if len(row) != len(schema):
            raise StorageError(
                f"CSV line {lineno}: expected {len(schema)} fields, got {len(row)}"
            )
        for field, cell in zip(schema, row):
            columns[field.name].append(cell)
    out = {}
    for field in schema:
        try:
            if np.issubdtype(field.dtype, np.integer):
                out[field.name] = np.array(
                    [int(c) for c in columns[field.name]], dtype=field.dtype
                )
            elif np.issubdtype(field.dtype, np.floating):
                out[field.name] = np.array(
                    [float(c) for c in columns[field.name]], dtype=field.dtype
                )
            else:
                raise SchemaError(
                    f"CSV interchange supports numeric columns only, "
                    f"{field.name!r} is {field.dtype}"
                )
        except ValueError as exc:
            raise StorageError(
                f"CSV column {field.name!r}: unparseable value ({exc})"
            ) from exc
    return ColumnTable.from_arrays(schema, **out)


def write_csv(table: ColumnTable, path: str | os.PathLike) -> None:
    """Write a table to a CSV file."""
    Path(path).write_text(table_to_csv_text(table), encoding="utf-8")


def read_csv(path: str | os.PathLike, schema: Schema) -> ColumnTable:
    """Read a CSV file against a schema."""
    p = Path(path)
    if not p.exists():
        raise StorageError(f"no such file: {p}")
    return table_from_csv_text(p.read_text(encoding="utf-8"), schema)
