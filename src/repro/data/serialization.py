"""Binary packing of column tables for DFS blocks and the chunk store.

A packed table is a self-describing byte string: a small header encoding
the schema (field names and dtype strings) followed by the rows as a
packed structured array.  Self-description matters because MapReduce map
tasks receive single DFS blocks and must decode them independently — the
same property Hadoop sequence files provide.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.data.columnar import ColumnTable
from repro.data.schema import Schema
from repro.errors import StorageError

__all__ = ["pack_table", "unpack_table"]

_MAGIC = b"RPT1"  # repro packed table, version 1


def pack_table(table: ColumnTable) -> bytes:
    """Serialise ``table`` to a self-describing byte string."""
    header = {
        "fields": [[f.name, f.dtype.str] for f in table.schema],
        "n_rows": table.n_rows,
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    payload = table.to_struct_array().tobytes()
    return _MAGIC + struct.pack("<I", len(header_bytes)) + header_bytes + payload


def unpack_table(data: bytes) -> ColumnTable:
    """Inverse of :func:`pack_table`."""
    if len(data) < 8 or data[:4] != _MAGIC:
        raise StorageError("not a packed table (bad magic)")
    (header_len,) = struct.unpack("<I", data[4:8])
    header_end = 8 + header_len
    if len(data) < header_end:
        raise StorageError("truncated packed table header")
    try:
        header = json.loads(data[8:header_end].decode("utf-8"))
        schema = Schema([(name, np.dtype(dt)) for name, dt in header["fields"]])
        n_rows = int(header["n_rows"])
    except (ValueError, KeyError, TypeError) as exc:
        raise StorageError(f"corrupt packed table header: {exc}") from exc
    struct_dtype = schema.to_struct_dtype()
    expected = header_end + n_rows * struct_dtype.itemsize
    if len(data) != expected:
        raise StorageError(
            f"packed table payload is {len(data) - header_end} bytes, "
            f"expected {n_rows * struct_dtype.itemsize}"
        )
    arr = np.frombuffer(data[header_end:], dtype=struct_dtype)
    return ColumnTable.from_struct_array(schema, arr)
