"""A deliberately traditional row-oriented store (the E6 baseline).

This models the data layer of the "existing portfolio management tools"
the paper says cannot analyse at YELT scale (§II): rows packed into
fixed-size pages, a B+-tree primary index, and a per-row random-access
path.  The point is not to be slow on purpose — pages and the index are
implemented straightforwardly — but to expose the *access pattern* the
paper criticises: key-at-a-time lookups touching O(log n) index nodes and
one page per probe, versus the columnar scan's sequential sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.data.btree import BPlusTree
from repro.data.columnar import ColumnTable
from repro.data.schema import Schema
from repro.errors import ConfigurationError, StorageError

__all__ = ["PageStats", "RowStore"]


@dataclass
class PageStats:
    """Logical-I/O counters for a :class:`RowStore`."""

    page_reads: int = 0
    page_writes: int = 0

    def reset(self) -> None:
        self.page_reads = 0
        self.page_writes = 0


class RowStore:
    """Row-oriented table with a B+-tree primary-key index.

    Parameters
    ----------
    schema:
        Row schema; one field must be named as the primary ``key``.
    key:
        Name of the integer primary-key column.
    page_rows:
        Rows per page; models an 8 KiB page holding fixed-width records.
    """

    def __init__(self, schema: Schema, key: str, page_rows: int = 128) -> None:
        if key not in schema:
            raise ConfigurationError(f"key column {key!r} not in schema")
        if not np.issubdtype(schema[key].dtype, np.integer):
            raise ConfigurationError("primary key must be an integer column")
        if page_rows <= 0:
            raise ConfigurationError(f"page_rows must be positive, got {page_rows}")
        self.schema = schema
        self.key = key
        self.page_rows = page_rows
        self._struct_dtype = schema.to_struct_dtype()
        self._pages: list[np.ndarray] = []
        self._fill: int = 0  # rows used in the last page
        self._index = BPlusTree(order=64)
        self.stats = PageStats()

    # -- loading -------------------------------------------------------------

    def insert_row(self, **fields) -> None:
        """Insert one row (dict of column values)."""
        record = np.zeros(1, dtype=self._struct_dtype)
        for name in self.schema.names:
            if name not in fields:
                raise StorageError(f"missing field {name!r}")
            record[name] = fields[name]
        key = int(fields[self.key])
        if self._index.contains(key):
            raise StorageError(f"duplicate primary key {key}")
        if not self._pages or self._fill == self.page_rows:
            self._pages.append(np.zeros(self.page_rows, dtype=self._struct_dtype))
            self._fill = 0
        page_no = len(self._pages) - 1
        slot = self._fill
        self._pages[page_no][slot] = record[0]
        self._fill += 1
        self.stats.page_writes += 1
        self._index.insert(key, (page_no, slot))

    def bulk_load(self, table: ColumnTable) -> None:
        """Load every row of a columnar table (row-at-a-time, as an OLTP
        engine would during ETL)."""
        if table.schema != self.schema:
            raise StorageError("table schema does not match store schema")
        struct = table.to_struct_array()
        for i in range(table.n_rows):
            row = struct[i]
            self._insert_struct_row(row)

    def _insert_struct_row(self, row: np.void) -> None:
        key = int(row[self.key])
        if self._index.contains(key):
            raise StorageError(f"duplicate primary key {key}")
        if not self._pages or self._fill == self.page_rows:
            self._pages.append(np.zeros(self.page_rows, dtype=self._struct_dtype))
            self._fill = 0
        page_no = len(self._pages) - 1
        slot = self._fill
        self._pages[page_no][slot] = row
        self._fill += 1
        self.stats.page_writes += 1
        self._index.insert(key, (page_no, slot))

    # -- access paths ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    @property
    def n_pages(self) -> int:
        return len(self._pages)

    def get(self, key: int) -> dict[str, object]:
        """Random access by primary key (index probe + page read)."""
        page_no, slot = self._index.get(int(key))
        self.stats.page_reads += 1
        row = self._pages[page_no][slot]
        return {name: row[name].item() for name in self.schema.names}

    def get_field(self, key: int, field_name: str):
        """Random access returning a single field (still reads a page)."""
        page_no, slot = self._index.get(int(key))
        self.stats.page_reads += 1
        return self._pages[page_no][slot][field_name].item()

    def get_many(self, keys: Sequence[int], field_name: str) -> np.ndarray:
        """Key-at-a-time batch lookup — the OLTP anti-pattern under test.

        This is how a naive portfolio tool joins the YET's event stream
        against an indexed ELT table: one index descent and one page read
        per event occurrence.
        """
        out = np.empty(len(keys), dtype=np.float64)
        for i, k in enumerate(keys):
            out[i] = self.get_field(int(k), field_name)
        return out

    def full_scan(self) -> Iterator[np.ndarray]:
        """Page-ordered sequential scan (yields whole pages)."""
        for i, page in enumerate(self._pages):
            self.stats.page_reads += 1
            used = self._fill if i == len(self._pages) - 1 else self.page_rows
            yield page[:used]

    def to_column_table(self) -> ColumnTable:
        """Export contents via a full scan."""
        parts = [p.copy() for p in self.full_scan()]
        if not parts:
            return ColumnTable(self.schema)
        struct = np.concatenate(parts)
        return ColumnTable.from_struct_array(self.schema, struct)

    @property
    def index_node_visits(self) -> int:
        return self._index.node_visits
