"""Key partitioners for the shuffle phase of MapReduce.

A partitioner maps a key to a reducer bucket in ``[0, n_reducers)``.  The
hash partitioner is the Hadoop default; the range partitioner (built from
a key sample) produces globally sorted output across reducers, which the
warehouse layer uses when materialising sorted loss vectors.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Sequence

from repro.errors import ConfigurationError
from repro.util.rng import stable_hash64

__all__ = ["hash_partition", "RangePartitioner"]


def hash_partition(key, n_buckets: int) -> int:
    """Stable hash partitioning (process-independent, unlike ``hash``)."""
    if n_buckets <= 0:
        raise ConfigurationError(f"n_buckets must be positive, got {n_buckets}")
    return stable_hash64(repr(key)) % n_buckets


class RangePartitioner:
    """Partition ordered keys into contiguous ranges.

    Parameters
    ----------
    boundaries:
        Sorted cut points; bucket ``i`` receives keys in
        ``(boundaries[i-1], boundaries[i]]`` with open ends at the extremes.
    """

    def __init__(self, boundaries: Sequence) -> None:
        bounds = list(boundaries)
        if sorted(bounds) != bounds:
            raise ConfigurationError("range boundaries must be sorted")
        self.boundaries = bounds

    @classmethod
    def from_sample(cls, sample: Sequence, n_buckets: int) -> "RangePartitioner":
        """Choose boundaries as evenly spaced quantiles of a key sample."""
        if n_buckets <= 0:
            raise ConfigurationError(f"n_buckets must be positive, got {n_buckets}")
        ordered = sorted(sample)
        if not ordered:
            return cls([])
        bounds = [
            ordered[min(len(ordered) - 1, (i + 1) * len(ordered) // n_buckets)]
            for i in range(n_buckets - 1)
        ]
        return cls(bounds)

    @property
    def n_buckets(self) -> int:
        return len(self.boundaries) + 1

    def __call__(self, key, n_buckets: int | None = None) -> int:
        bucket = bisect_right(self.boundaries, key)
        if n_buckets is not None and bucket >= n_buckets:
            raise ConfigurationError(
                f"partitioner built for {self.n_buckets} buckets, asked for {n_buckets}"
            )
        return bucket
