"""Exception hierarchy for the :mod:`repro` risk-analytics library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors (``TypeError`` etc. are still allowed to escape where appropriate).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class SchemaError(ReproError):
    """A table was given data inconsistent with its declared schema."""


class CapacityError(ReproError):
    """A memory space or device allocation exceeded its configured capacity."""


class DeviceError(ReproError):
    """A simulated-device operation was invalid (bad launch, missing buffer)."""


class ClusterError(ReproError):
    """A simulated-cluster operation failed (unknown rank, dead node)."""


class StorageError(ReproError):
    """A DFS / chunk-store operation failed (missing file, corrupt block)."""


class MapReduceError(ReproError):
    """A MapReduce job was misconfigured or a task failed permanently."""


class EngineError(ReproError):
    """An aggregate-analysis engine received an unsupported workload."""


class AnalysisError(ReproError):
    """A statistical analysis was requested on insufficient or invalid data."""


class AdmissionError(ReproError):
    """The serving layer shed a request (queue full or latency SLO at risk)."""


class ExecutionError(ReproError):
    """A supervised parallel execution failed terminally.

    Raised by :class:`~repro.hpc.pool.WorkPool` (and surfaced unchanged
    by the dispatchers, engines, and the pricing service) once the task
    policy's retry budget is exhausted — never for a transient worker
    death or deadline miss, which supervision absorbs by resubmitting.
    Carries the *failure chain*: every underlying exception observed
    across the attempts, oldest first, so operators see the whole story
    instead of the last raw executor traceback.
    """

    def __init__(self, message: str, *, attempts: int = 0,
                 failures: tuple = ()) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.failures = tuple(failures)

    @property
    def failure_chain(self) -> tuple[str, ...]:
        """One ``"ExcType: message"`` line per observed failure."""
        return tuple(f"{type(f).__name__}: {f}" for f in self.failures)
