"""Exception hierarchy for the :mod:`repro` risk-analytics library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors (``TypeError`` etc. are still allowed to escape where appropriate).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class SchemaError(ReproError):
    """A table was given data inconsistent with its declared schema."""


class CapacityError(ReproError):
    """A memory space or device allocation exceeded its configured capacity."""


class DeviceError(ReproError):
    """A simulated-device operation was invalid (bad launch, missing buffer)."""


class ClusterError(ReproError):
    """A simulated-cluster operation failed (unknown rank, dead node)."""


class StorageError(ReproError):
    """A DFS / chunk-store operation failed (missing file, corrupt block)."""


class MapReduceError(ReproError):
    """A MapReduce job was misconfigured or a task failed permanently."""


class EngineError(ReproError):
    """An aggregate-analysis engine received an unsupported workload."""


class AnalysisError(ReproError):
    """A statistical analysis was requested on insufficient or invalid data."""


class AdmissionError(ReproError):
    """The serving layer shed a request (queue full or latency SLO at risk)."""
