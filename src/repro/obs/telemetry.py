"""The :class:`Telemetry` facade: one plane of metrics + spans + events.

A ``Telemetry`` instance is the unit of observability scope.  A
:class:`~repro.session.RiskSession` owns one and threads it through
everything it builds — planner, dispatcher, pool, pricing service — so
one scrape of ``session.telemetry`` sees the whole request path.
Standalone components (a bare :class:`~repro.hpc.pool.WorkPool`, a
:class:`~repro.serve.PricingService` over a raw dispatcher) default to a
private enabled plane of their own.

``Telemetry(enabled=False)`` is the no-op mode: metric handles become a
shared do-nothing singleton, spans skip the clock reads, events return
``None`` — the hot path pays one attribute call per touch point, which
the tier-1 overhead guard holds to within 5% of uninstrumented.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.obs.events import EventLog
from repro.obs.registry import (MetricsRegistry, parse_prometheus_text,
                                prometheus_name)
from repro.obs.tracing import Tracer

__all__ = ["Telemetry", "as_telemetry"]


class Telemetry:
    """One metrics registry + tracer + event log, scraped as a unit."""

    def __init__(self, enabled: bool = True, *,
                 max_events: int = 1024, max_spans: int = 512) -> None:
        self.enabled = bool(enabled)
        self.metrics = MetricsRegistry(self.enabled)
        self.events = EventLog(self.metrics, max_events=max_events)
        self.tracer = Tracer(self.metrics, max_spans=max_spans)

    # -- instrument handles ------------------------------------------------

    def counter(self, name: str):
        return self.metrics.counter(name)

    def gauge(self, name: str, track_max: bool = False):
        return self.metrics.gauge(name, track_max=track_max)

    def histogram(self, name: str,
                  buckets: Sequence[float] | None = None):
        return self.metrics.histogram(name, buckets)

    def span(self, name: str, **annotations):
        return self.tracer.span(name, **annotations)

    def event(self, kind: str, /, **fields):
        return self.events.emit(kind, **fields)

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict:
        """The stable nested scrape: flat dot-keyed ``metrics``, plus the
        bounded ``events`` and ``spans`` buffers (all JSON-ready)."""
        return {
            "enabled": self.enabled,
            "metrics": self.metrics.snapshot(),
            "events": self.events.snapshot(),
            "spans": self.tracer.snapshot(),
        }

    def samples(self) -> Dict[str, float]:
        return self.metrics.samples()

    def to_prometheus_text(self) -> str:
        return self.metrics.to_prometheus_text()


def as_telemetry(value) -> Telemetry:
    """Coerce a constructor argument into a :class:`Telemetry` plane.

    ``True``/``None`` build a fresh enabled plane, ``False`` a disabled
    one, and an existing instance passes through (how a session shares
    its plane with the components it builds).
    """
    if isinstance(value, Telemetry):
        return value
    if value is None or value is True:
        return Telemetry(enabled=True)
    if value is False:
        return Telemetry(enabled=False)
    raise TypeError(
        f"telemetry must be a Telemetry instance or bool, got {value!r}"
    )
