"""Span tracing of the request path: nesting, wall *and* CPU time.

``Tracer.span(name)`` is a context manager.  Spans nest per thread via a
thread-local stack, so the serving layer's broker thread and the caller
threads each get their own parent/child chain — a batch span opened on
the broker thread parents the stack/dispatch/merge children it opens,
while the submitting threads' request spans stay separate, which is
exactly how the work is actually scheduled.

Each finished span records:

- ``wall_seconds`` — ``perf_counter`` delta (queueing + execution);
- ``cpu_seconds`` — ``thread_time`` delta (this thread's CPU burn, so a
  span that mostly *waits* — queue wait, pool futures — shows a large
  wall/cpu gap, the signature of a data-movement bottleneck);
- ``parent_id`` / ``span_id`` ordering (children finish before parents).

Finished spans land in a bounded deque (oldest evicted) and each one
feeds a ``span.<name>.seconds`` histogram in the registry, so the
percentile view survives even after the individual records rotate out.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.obs.registry import MetricsRegistry

__all__ = ["SpanRecord", "Tracer"]

#: Wider-than-latency bounds for span histograms (a staging span can
#: legitimately take tens of seconds on bench shapes).
SPAN_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)


@dataclass
class SpanRecord:
    """One finished span (JSON-ready via :meth:`as_dict`)."""

    name: str
    span_id: int
    parent_id: Optional[int]
    thread: str
    started_at: float          #: seconds since tracer creation
    wall_seconds: float
    cpu_seconds: float
    annotations: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread": self.thread,
            "started_at": self.started_at,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "annotations": dict(self.annotations),
        }


class _ActiveSpan:
    """Handle yielded inside ``with tracer.span(...)`` — annotate only."""

    __slots__ = ("name", "span_id", "parent_id", "annotations")

    def __init__(self, name: str, span_id: int,
                 parent_id: Optional[int], annotations: dict) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.annotations = annotations

    def annotate(self, **fields) -> None:
        self.annotations.update(fields)


class _NoopSpan:
    __slots__ = ()
    name = "noop"
    span_id = 0
    parent_id = None
    annotations: Dict[str, object] = {}

    def annotate(self, **fields) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Bounded, thread-aware span recorder over a metrics registry."""

    def __init__(self, registry: MetricsRegistry,
                 max_spans: int = 512) -> None:
        self._registry = registry
        self._records: deque[SpanRecord] = deque(maxlen=max_spans)
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._epoch = time.perf_counter()

    def _stack(self) -> List[_ActiveSpan]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **annotations) -> Iterator[_ActiveSpan]:
        if not self._registry.enabled:
            yield _NOOP_SPAN
            return
        stack = self._stack()
        parent = stack[-1] if stack else None
        active = _ActiveSpan(
            name, next(self._ids),
            parent.span_id if parent is not None else None,
            dict(annotations),
        )
        stack.append(active)
        t0 = time.perf_counter()
        c0 = time.thread_time()
        try:
            yield active
        finally:
            wall = time.perf_counter() - t0
            cpu = time.thread_time() - c0
            stack.pop()
            self._records.append(SpanRecord(
                name=active.name,
                span_id=active.span_id,
                parent_id=active.parent_id,
                thread=threading.current_thread().name,
                started_at=t0 - self._epoch,
                wall_seconds=wall,
                cpu_seconds=cpu,
                annotations=active.annotations,
            ))
            self._registry.histogram(
                f"span.{name}.seconds", SPAN_BUCKETS
            ).observe(wall)

    def records(self, name: str | None = None) -> List[SpanRecord]:
        """Finished spans in completion order (children before parents),
        optionally filtered by span name."""
        records = list(self._records)
        if name is not None:
            records = [r for r in records if r.name == name]
        return records

    def snapshot(self) -> List[dict]:
        return [r.as_dict() for r in self._records]
