"""Process-wide telemetry plane: metrics, spans, structured events.

The observability substrate ROADMAP item 3 calls for: every subsystem
that used to keep ad-hoc private counters (session ships, serve stats,
pool health) now instruments through one :class:`Telemetry` plane, and
operators/benches scrape it through public pull-based endpoints —
``RiskSession.telemetry`` and ``PricingService.telemetry`` — instead of
reaching into private fields.

Metric naming convention (the repo's rules of record)
-----------------------------------------------------
- **Flat, dot-separated, lowercase**: ``<subsystem>.<noun>[.<detail>]``
  — e.g. ``serve.requests``, ``pool.worker_deaths``,
  ``engine.vectorized.lanes``.  Units are spelled in the last segment
  when they matter: ``serve.request.seconds``, ``serve.cache.hit_bytes``.
- **Counters are monotone** (requests, retries, bytes); **gauges** are
  point-in-time levels (``serve.queue.depth``; peak-tracking gauges add
  a derived ``.max`` key); **histograms** have fixed bucket bounds and
  expand in snapshots to ``.count``/``.sum``/``.max``/``.p50``/
  ``.p95``/``.p99``.
- **Every snapshot speaks this schema**: ``MetricsRegistry.snapshot()``,
  ``ServeStats.snapshot()``, ``PoolHealth.snapshot()`` and
  ``SessionStats.snapshot()`` all return flat ``{dot.name: value}``
  dicts that merge cleanly into one scrape.
- **Spans** record the request path (``session.stage`` → ``session.plan``
  → ``serve.batch`` → ``serve.dispatch`` → ``serve.merge``) with
  per-thread parent/child nesting and wall *and* CPU seconds; each span
  also feeds a ``span.<name>.seconds`` histogram.
- **Events** are bounded, typed occurrences (``plan.decision``,
  ``pool.degraded``, ``pool.recovered``, ``cache.evicted``,
  ``fault.injected``, ``serve.shed``) with an ``events.<kind>`` counter
  that outlives the rotating buffer.
- **Prometheus export**: ``to_prometheus_text()`` renders the standard
  exposition format with names mangled dot→underscore under the
  ``repro_`` prefix (``serve.request.seconds`` →
  ``repro_serve_request_seconds``); ``parse_prometheus_text`` inverts it
  so benches assert the round trip against ``samples()``.

Adding a metric: grab a handle once at construction time
(``self._m_thing = telemetry.counter("subsystem.thing")``), update it on
the hot path (one lock + one add), and never cache values outside the
registry — snapshots must be the single source of truth.
"""

from repro.obs.events import Event, EventLog
from repro.obs.registry import (Counter, DEFAULT_LATENCY_BUCKETS, Gauge,
                                Histogram, MetricsRegistry,
                                parse_prometheus_text, prometheus_name)
from repro.obs.telemetry import Telemetry, as_telemetry
from repro.obs.tracing import SpanRecord, Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS", "prometheus_name", "parse_prometheus_text",
    "Event", "EventLog", "SpanRecord", "Tracer",
    "Telemetry", "as_telemetry",
]
