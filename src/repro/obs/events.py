"""Bounded structured event log (plan decisions, degradation, faults).

Metrics answer "how much"; the event log answers "what happened, in what
order".  Each :meth:`EventLog.emit` appends one typed record — a kind
string in the same dot-separated namespace as the metrics
(``plan.decision``, ``pool.degraded``, ``cache.evicted``,
``fault.injected``) plus arbitrary JSON-ready fields — to a bounded
deque, and bumps an ``events.<kind>`` counter so the *count* survives
after the record itself rotates out of the buffer.

The log is append-only and lossy by design (oldest evicted): it is an
operator diagnostic, not an audit trail.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.registry import MetricsRegistry

__all__ = ["Event", "EventLog"]


@dataclass(frozen=True)
class Event:
    """One structured occurrence (JSON-ready via :meth:`as_dict`)."""

    seq: int
    kind: str
    at_seconds: float          #: seconds since log creation
    fields: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"seq": self.seq, "kind": self.kind,
                "at_seconds": self.at_seconds, "fields": dict(self.fields)}


class EventLog:
    """Bounded append-only event buffer over a metrics registry."""

    def __init__(self, registry: MetricsRegistry,
                 max_events: int = 1024) -> None:
        self._registry = registry
        self._events: deque[Event] = deque(maxlen=max_events)
        self._seq = itertools.count(1)
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()

    def emit(self, kind: str, /, **fields) -> Optional[Event]:
        """Record one event; returns it (``None`` when disabled)."""
        if not self._registry.enabled:
            return None
        with self._lock:
            event = Event(
                seq=next(self._seq), kind=kind,
                at_seconds=time.perf_counter() - self._epoch,
                fields=fields,
            )
            self._events.append(event)
        self._registry.counter(f"events.{kind}").inc()
        return event

    def tail(self, n: int | None = None,
             kind: str | None = None) -> List[Event]:
        """Most recent events (oldest first), optionally by kind."""
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [e for e in events if e.kind == kind]
        if n is not None:
            events = events[-n:]
        return events

    def __len__(self) -> int:
        return len(self._events)

    def snapshot(self) -> List[dict]:
        return [e.as_dict() for e in self.tail()]
