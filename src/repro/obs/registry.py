"""Lock-cheap metrics registry: counters, gauges, fixed-bucket histograms.

Every metric is a tiny object with its own ``threading.Lock`` held only
for the handful of arithmetic ops in one update — callers cache the
metric handle at construction time so the hot path is one lock plus a
float add, never a registry lookup.  A registry created with
``enabled=False`` hands out a shared no-op metric instead: updates
compile down to an attribute call that does nothing, which is what the
overhead guard in ``tests/test_obs.py`` holds the instrumented paths to.

Export is pull-based and dual-format:

- :meth:`MetricsRegistry.snapshot` — the flat ``{dot.name: value}`` dict
  (the convention documented in :mod:`repro.obs`); histograms expand to
  ``name.count`` / ``name.sum`` / ``name.max`` / ``name.p50`` /
  ``name.p95`` / ``name.p99``.
- :meth:`MetricsRegistry.to_prometheus_text` — the standard exposition
  format (``# TYPE`` lines, cumulative ``_bucket{le="..."}`` series).
  :func:`parse_prometheus_text` parses it back so benches can assert the
  round trip: ``parse_prometheus_text(reg.to_prometheus_text()) ==
  reg.samples()``.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Dict, Iterable, Sequence

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS", "prometheus_name", "parse_prometheus_text",
]

#: Prefix for every exported prometheus sample (the repo's namespace).
PROMETHEUS_PREFIX = "repro_"

#: Default histogram bounds: latency seconds from 100µs to 10s, roughly
#: log-spaced — wide enough for a cache hit and a cold pooled sweep.
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def prometheus_name(flat_name: str) -> str:
    """Mangle a flat dot-separated metric name into a prometheus one
    (``serve.request.seconds`` → ``repro_serve_request_seconds``)."""
    return PROMETHEUS_PREFIX + _NAME_RE.sub("_", flat_name)


def _fmt(value: float) -> str:
    """Exposition-format float that round-trips exactly through
    :func:`float` (integers render bare for readability)."""
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


class Counter:
    """Monotonically non-decreasing count (events, bytes, rows)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Point-in-time level (queue depth, degraded flag, calibrated rate).

    ``track_max`` keeps a high-water mark alongside the live value —
    queue depth's peak matters more than wherever the needle happens to
    rest when the scrape lands.
    """

    __slots__ = ("name", "track_max", "_lock", "_value", "_max")

    def __init__(self, name: str, track_max: bool = False) -> None:
        self.name = name
        self.track_max = track_max
        self._lock = threading.Lock()
        self._value = 0.0
        self._max = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            if self._value > self._max:
                self._max = self._value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount
            if self._value > self._max:
                self._max = self._value

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    @property
    def max_value(self) -> float:
        return self._max


class Histogram:
    """Fixed-bound bucketed distribution (latencies, batch occupancy).

    ``bounds`` are inclusive upper bounds (prometheus ``le`` semantics)
    plus an implicit ``+Inf`` overflow bucket.  Quantiles interpolate
    linearly inside the covering bucket; the overflow bucket reports the
    maximum observed value (the honest answer when the distribution
    escapes the configured range).
    """

    __slots__ = ("name", "bounds", "_lock", "_counts", "_sum", "_count",
                 "_max")

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs >= 1 bucket bound")
        self.name = name
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._max = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._counts[bisect_left(self.bounds, value)] += 1
            self._sum += value
            self._count += 1
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def max_value(self) -> float:
        return self._max

    def bucket_counts(self) -> Dict[float, int]:
        """Cumulative count per upper bound, ``float("inf")`` last."""
        with self._lock:
            counts = list(self._counts)
        out: Dict[float, int] = {}
        cum = 0
        for bound, c in zip(self.bounds, counts):
            cum += c
            out[bound] = cum
        out[float("inf")] = cum + counts[-1]
        return out

    def quantile(self, q: float) -> float:
        """Linear-interpolation quantile estimate, 0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        with self._lock:
            counts = list(self._counts)
            total = self._count
            observed_max = self._max
        if total == 0:
            return 0.0
        target = q * total
        cum = 0.0
        lower = 0.0
        for bound, c in zip(self.bounds, counts):
            if c and cum + c >= target:
                estimate = lower + (target - cum) / c * (bound - lower)
                return min(estimate, observed_max)
            cum += c
            lower = bound
        return observed_max

    def snapshot_into(self, out: Dict[str, float]) -> None:
        out[self.name + ".count"] = float(self._count)
        out[self.name + ".sum"] = self._sum
        out[self.name + ".max"] = self._max
        out[self.name + ".p50"] = self.quantile(0.50)
        out[self.name + ".p95"] = self.quantile(0.95)
        out[self.name + ".p99"] = self.quantile(0.99)


class _NoopMetric:
    """Shared stand-in handed out by a disabled registry: every update
    is a no-op, every read is zero.  One instance serves all names."""

    __slots__ = ()

    name = "noop"
    track_max = False
    bounds = DEFAULT_LATENCY_BUCKETS

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0

    @property
    def max_value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0

    def bucket_counts(self) -> Dict[float, int]:
        return {}

    def quantile(self, q: float) -> float:
        return 0.0

    def snapshot_into(self, out: Dict[str, float]) -> None:
        pass


NOOP_METRIC = _NoopMetric()


class MetricsRegistry:
    """Name → metric map with get-or-create semantics.

    Creation takes the registry lock once; updates take only the
    metric's own lock.  Asking for an existing name with a different
    metric kind is a programming error and raises ``ValueError``.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, cls, *args, **kwargs):
        if not self.enabled:
            return NOOP_METRIC
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, *args, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str, track_max: bool = False) -> Gauge:
        return self._get_or_create(name, Gauge, track_max)

    def histogram(self, name: str,
                  buckets: Sequence[float] | None = None) -> Histogram:
        if buckets is None:
            buckets = DEFAULT_LATENCY_BUCKETS
        return self._get_or_create(name, Histogram, buckets)

    def names(self) -> Iterable[str]:
        with self._lock:
            return list(self._metrics)

    # -- export ------------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{dot.name: value}`` view of every registered metric."""
        with self._lock:
            metrics = list(self._metrics.values())
        out: Dict[str, float] = {}
        for metric in metrics:
            if isinstance(metric, Counter):
                out[metric.name] = metric.value
            elif isinstance(metric, Gauge):
                out[metric.name] = metric.value
                if metric.track_max:
                    out[metric.name + ".max"] = metric.max_value
            elif isinstance(metric, Histogram):
                metric.snapshot_into(out)
        return out

    def samples(self) -> Dict[str, float]:
        """The exact prometheus sample set ``to_prometheus_text`` renders
        (mangled names, ``{le="..."}`` labels) — the round-trip anchor."""
        with self._lock:
            metrics = list(self._metrics.values())
        out: Dict[str, float] = {}
        for metric in metrics:
            pname = prometheus_name(metric.name)
            if isinstance(metric, Counter):
                out[pname] = metric.value
            elif isinstance(metric, Gauge):
                out[pname] = metric.value
                if metric.track_max:
                    out[pname + "_max"] = metric.max_value
            elif isinstance(metric, Histogram):
                for bound, cum in metric.bucket_counts().items():
                    le = "+Inf" if bound == float("inf") else _fmt(bound)
                    out[f'{pname}_bucket{{le="{le}"}}'] = float(cum)
                out[pname + "_sum"] = metric.sum
                out[pname + "_count"] = float(metric.count)
        return out

    def to_prometheus_text(self) -> str:
        """Standard exposition format (one ``# TYPE`` block per metric)."""
        with self._lock:
            metrics = list(self._metrics.values())
        lines: list[str] = []
        for metric in metrics:
            pname = prometheus_name(metric.name)
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {pname} counter")
                lines.append(f"{pname} {_fmt(metric.value)}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {pname} gauge")
                lines.append(f"{pname} {_fmt(metric.value)}")
                if metric.track_max:
                    lines.append(f"# TYPE {pname}_max gauge")
                    lines.append(f"{pname}_max {_fmt(metric.max_value)}")
            elif isinstance(metric, Histogram):
                lines.append(f"# TYPE {pname} histogram")
                for bound, cum in metric.bucket_counts().items():
                    le = "+Inf" if bound == float("inf") else _fmt(bound)
                    lines.append(f'{pname}_bucket{{le="{le}"}} {cum}')
                lines.append(f"{pname}_sum {_fmt(metric.sum)}")
                lines.append(f"{pname}_count {metric.count}")
        return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Parse exposition text back to ``{sample_name: value}`` (labels kept
    inside the key) — the inverse of :meth:`MetricsRegistry.samples`."""
    out: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        out[name] = float(value)
    return out
