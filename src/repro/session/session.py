""":class:`RiskSession` — the staged, planner-driven entry point.

The paper's central claim is that risk analytics is data-bound: the YET
is simulated once and every downstream workload — aggregate analysis,
pricing quotes, EP curves, sensitivities — should be a cheap sweep over
data that is *already staged* ("a consistent lens through which to view
results", §II).  The classic entry points contradict that by each
binding, shipping, and tearing down the same payloads independently;
the zero-copy guarantee of the shm data plane only held *within* one
entry point.

A session restores the invariant across all of them:

- **bind once** — the YET (and optionally a portfolio) are bound at
  construction; every workload prices against the same trial set.
- **stage once** — pooled substrates share ONE
  :class:`~repro.serve.dispatch.PooledDispatcher` (one
  :class:`~repro.hpc.pool.WorkPool`, one shared-memory arena): the YET
  crosses to the workers at most once per session, whether the next
  request is an aggregate run, a quote batch, or an EP curve
  (``session.payload_ships`` exposes the counter the tests assert on).
- **plan, don't guess** — ``engine="auto"`` resolves through the
  :class:`~repro.session.planner.EnginePlanner`: the HPC cost model
  prices every auto-candidate engine at its (EWMA-calibrated)
  throughput, charges cold substrates their startup, and the returned
  :class:`~repro.session.planner.ExecutionPlan` can ``explain()``
  itself.
- **close exactly once** — ``close()`` (or the context manager) tears
  down services, engines, pools, and arenas idempotently; use after
  close raises instead of silently resurrecting resources.

The classic entry points (:class:`~repro.core.simulation.AggregateAnalysis`,
:class:`~repro.serve.service.PricingService`,
:class:`~repro.dfa.pricing.RealTimePricer`) are veneers over a session —
standalone construction gives them a private one, and passing
``session=`` lets several entry points share one staged substrate.
This seam is where the ROADMAP's next axes plug in: multi-node sharding
is per-shard sessions over sub-YETs; multi-tenant scheduling is
per-tenant sessions over one staged trial set.
"""

from __future__ import annotations

import inspect
import threading
import time

from repro.analytics.ep_curves import EpCurve, aep_curve, portfolio_ep_curves
from repro.analytics.sensitivity import term_sensitivities
from repro.core.engines import Engine, EngineResult
from repro.core.engines.registry import available_engines, engine_spec
from repro.core.layer import Layer
from repro.core.portfolio import Portfolio
from repro.core.simulation import AnalysisResult
from repro.core.tables import YetTable, YltTable
from repro.errors import ConfigurationError, EngineError
from repro.hpc import shm
from repro.hpc.pool import available_parallelism
from repro.obs import Telemetry, as_telemetry
from repro.serve.dispatch import Dispatcher, InlineDispatcher, PooledDispatcher
from repro.session.planner import EnginePlanner, ExecutionPlan

__all__ = ["RiskSession", "SessionStats"]


class SessionStats:
    """Bounded workload counters for one session.

    A *view over the session's* :class:`~repro.obs.Telemetry` plane:
    each attribute reads a ``session.*`` registry counter.  Attribute
    access is kept for compatibility but **deprecated** — scrape
    ``session.telemetry`` (or :meth:`snapshot`) instead.
    """

    _COUNTER_FIELDS = {
        "aggregates": "session.aggregates",
        "quotes": "session.quotes",
        "ep_curves": "session.ep_curves",
        "sensitivity_sweeps": "session.sensitivity_sweeps",
        "plans": "session.plans",
    }

    def __init__(self, telemetry: Telemetry | None = None) -> None:
        self._tel = telemetry if telemetry is not None else Telemetry()
        self._counters = {attr: self._tel.counter(name)
                          for attr, name in self._COUNTER_FIELDS.items()}

    def snapshot(self) -> dict:
        """JSON-ready flat dict in the ``session.*`` dot-key convention
        of :mod:`repro.obs`."""
        return {name: getattr(self, attr)
                for attr, name in self._COUNTER_FIELDS.items()}


def _session_counter_view(attr: str, name: str) -> property:
    def fget(self: SessionStats) -> int:
        return int(self._counters[attr].value)

    return property(fget, doc=f"Counter view of {name} (deprecated "
                              "attribute access; scrape telemetry).")


for _attr, _name in SessionStats._COUNTER_FIELDS.items():
    setattr(SessionStats, _attr, _session_counter_view(_attr, _name))
del _attr, _name


class _StagedMulticore(Engine):
    """The session-staged multicore substrate.

    Runs the fused portfolio sweep as trial blocks over the *session's*
    shared :class:`~repro.serve.dispatch.PooledDispatcher` instead of a
    private :class:`~repro.core.engines.multicore.MulticoreEngine` pool.
    Numerically identical (same block decomposition, same kernel sweep,
    block-local aggregate terms), but the YET rides the session's one
    staged arena — so an aggregate run followed by quote batches ships
    the trial set zero additional times.
    """

    name = "multicore"

    def __init__(self, session: "RiskSession") -> None:
        self._session = session

    def run(self, portfolio: Portfolio, yet: YetTable, *,
            emit_yelt: bool = False) -> EngineResult:
        self._validate(portfolio, yet)
        if emit_yelt:
            raise EngineError(
                "multicore engine does not emit YELTs; use the vectorized "
                "engine for event-granularity output"
            )
        t0 = time.perf_counter()
        sess = self._session
        kernel = portfolio.kernel(dense_max_entries=sess.dense_max_entries)
        dispatcher = sess.dispatcher("pooled")
        final = dispatcher.run(kernel, yet)
        ylt_by_layer = {
            lid: YltTable(final[row]) for row, lid in enumerate(kernel.layer_ids)
        }
        portfolio_ylt = YltTable.sum(list(ylt_by_layer.values()))
        return EngineResult(
            engine=self.name,
            ylt_by_layer=ylt_by_layer,
            portfolio_ylt=portfolio_ylt,
            seconds=time.perf_counter() - t0,
            details={"n_workers": dispatcher.n_procs,
                     "n_blocks": min(dispatcher.n_procs, yet.n_trials),
                     "fused_layers": kernel.n_layers,
                     "transport": dispatcher.transport_active,
                     "degraded": bool(dispatcher.health is not None
                                      and dispatcher.health.degraded),
                     "session_staged": True},
        )


class RiskSession:
    """One staged entry point for every stage-2/3 workload.

    Parameters
    ----------
    yet:
        The pre-simulated year-event table every workload sweeps.
    portfolio:
        Optional default book for :meth:`aggregate` / :meth:`ep_curves`;
        per-call portfolios may always be passed explicitly.
    n_workers:
        Worker processes for pooled substrates (``None`` = host
        parallelism).
    transport:
        Payload transport for pooled substrates: ``"auto"`` / ``"shm"``
        / ``"pickle"`` (see :mod:`repro.hpc.shm`).
    dense_max_entries:
        Dense-lookup threshold forwarded to kernel construction.
    volatility_loading / tail_loading:
        Premium loadings for the session's pricing services.
    """

    def __init__(self, yet: YetTable, portfolio: Portfolio | None = None, *,
                 n_workers: int | None = None, transport: str = "auto",
                 dense_max_entries: int = 4_000_000,
                 volatility_loading: float = 0.25,
                 tail_loading: float = 0.02,
                 telemetry: Telemetry | bool | None = None) -> None:
        if not isinstance(yet, YetTable):
            raise ConfigurationError(
                f"expected YetTable, got {type(yet).__name__}"
            )
        if portfolio is not None and not isinstance(portfolio, Portfolio):
            raise ConfigurationError(
                f"expected Portfolio, got {type(portfolio).__name__}"
            )
        shm.validate_transport(transport, ConfigurationError)
        self.yet = yet
        self.portfolio = portfolio
        self.n_workers = n_workers
        self.transport = transport
        self.dense_max_entries = dense_max_entries
        self.volatility_loading = volatility_loading
        self.tail_loading = tail_loading
        self._n_procs = (n_workers if n_workers is not None
                         else available_parallelism())
        #: The session's telemetry plane — the public scrape point.  One
        #: plane covers planner, pool, dispatch, and any pricing service
        #: built through this session; ``telemetry=False`` is the no-op
        #: mode the overhead guard compares against.
        self.telemetry = as_telemetry(telemetry)
        self._planner = EnginePlanner(n_workers=self._n_procs,
                                      telemetry=self.telemetry)
        self.stats = SessionStats(self.telemetry)
        tel = self.telemetry
        self._m_aggregates = tel.counter("session.aggregates")
        self._m_quotes = tel.counter("session.quotes")
        self._m_ep_curves = tel.counter("session.ep_curves")
        self._m_sensitivity = tel.counter("session.sensitivity_sweeps")
        self._m_plans = tel.counter("session.plans")
        self._m_stages = tel.counter("session.stages")
        self._m_stage_reuse = tel.counter("session.stage_reuse")
        # Staged state, all lazy: nothing is spawned or placed until a
        # workload actually needs it.
        self._inline: InlineDispatcher | None = None
        self._pooled: PooledDispatcher | None = None
        self._staged_multicore: _StagedMulticore | None = None
        self._engines: dict[tuple, Engine] = {}
        self._extra_engines: list[Engine] = []
        self._services: list = []
        self._default_service = None
        #: Guards the default-service lazy init: concurrent quote()
        #: callers must coalesce into ONE service's micro-batcher, not
        #: each build their own.
        self._service_lock = threading.Lock()
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigurationError("session is closed")

    @property
    def closed(self) -> bool:
        return self._closed

    def warmup(self, engine: str = "pooled") -> None:
        """Pay substrate startup now (worker spawn, YET staging) so the
        first workload's latency is pure compute.  No-op for inline."""
        self._check_open()
        with self.telemetry.span("session.stage", engine=str(engine)):
            self.dispatcher(engine).warmup(self.yet)

    def close(self) -> None:
        """Tear down services, engines, pools, and arenas — exactly once
        each, in dependency order (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for svc in self._services:
            svc.close()
        self._services.clear()
        self._default_service = None
        for eng in [*self._engines.values(), *self._extra_engines]:
            if hasattr(eng, "close"):
                eng.close()
        self._engines.clear()
        self._extra_engines.clear()
        if self._pooled is not None:
            self._pooled.close()
            self._pooled = None
        self._inline = None
        self._staged_multicore = None

    def __enter__(self) -> "RiskSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- staged substrates -------------------------------------------------

    @property
    def pool_health(self):
        """The staged pool's :class:`~repro.hpc.pool.PoolHealth` record
        (``None`` until a pooled substrate exists).  ``degraded`` here
        means pooled workloads run serial inline fallbacks until
        :meth:`~repro.hpc.pool.WorkPool.reset_health`."""
        return (self._pooled.pool.health
                if self._pooled is not None else None)

    @property
    def payload_ships(self) -> int:
        """Times the staged payload crossed to the session's pool workers
        (0 until a pooled workload runs; stays 1 across a whole mixed
        aggregate + quote + EP-curve workload — the session invariant)."""
        return (self._pooled.pool.payload_ships
                if self._pooled is not None else 0)

    def dispatcher(self, spec="auto") -> Dispatcher:
        """The session-owned dispatcher for a serving-style workload.

        ``"auto"`` plans the choice; ``"inline"``/``"vectorized"`` and
        ``"pooled"``/``"multicore"`` name the substrates directly.  The
        returned dispatcher is owned (and closed) by the session.
        """
        self._check_open()
        if isinstance(spec, Dispatcher):
            return spec
        if spec in (None, "auto"):
            plan = self.plan("serving")
            spec = "pooled" if plan.engine == "multicore" else "inline"
        if spec in ("inline", "vectorized"):
            if self._inline is None:
                self._inline = InlineDispatcher()
            return self._inline
        if spec in ("pooled", "multicore"):
            if self._pooled is None:
                self._pooled = PooledDispatcher(
                    n_workers=self.n_workers, transport=self.transport,
                    telemetry=self.telemetry,
                )
                self._m_stages.inc()
            else:
                # Staged-substrate reuse: another workload rides the
                # already-staged pool/arena instead of building its own.
                self._m_stage_reuse.inc()
            return self._pooled
        raise ConfigurationError(
            f"unknown dispatcher {spec!r}; expected 'auto', "
            "'inline'/'vectorized', 'pooled'/'multicore', or a Dispatcher "
            "instance"
        )

    def engine(self, name: str | Engine = "auto", **kwargs) -> Engine:
        """A session-owned, warm engine (do not close it yourself).

        ``"auto"`` resolves through the planner.  ``"multicore"``
        (kwarg-free) returns the session-staged substrate sharing the
        serving pool; other names construct through the declarative
        registry, are cached per name, and are closed with the session.
        Unknown names raise :class:`~repro.errors.EngineError` with the
        available list — here, at the boundary.
        """
        self._check_open()
        if isinstance(name, Engine):
            return name
        if name == "auto":
            name = self.plan("aggregate").engine
        spec = engine_spec(name)
        if name == "multicore" and not kwargs:
            if self._staged_multicore is None:
                self._staged_multicore = _StagedMulticore(self)
            return self._staged_multicore
        params = inspect.signature(spec.factory).parameters
        if "dense_max_entries" in params:
            kwargs.setdefault("dense_max_entries", self.dense_max_entries)
        # Cache on the full configuration: the same (name, kwargs) must
        # return the same warm engine — a repeat run may never silently
        # reuse a differently-configured instance, nor accumulate one
        # live pool per call.
        try:
            key = (name, tuple(sorted(kwargs.items())))
            hash(key)
        except TypeError:
            # Unhashable kwargs (a caller-built SimulatedGpu, say) get a
            # fresh engine, still owned and closed by the session.
            eng = spec.factory(**kwargs)
            self._extra_engines.append(eng)
            return eng
        eng = self._engines.get(key)
        if eng is None:
            eng = spec.factory(**kwargs)
            self._engines[key] = eng
        return eng

    # -- planning ----------------------------------------------------------

    def plan(self, workload: str = "aggregate", *,
             portfolio: Portfolio | None = None,
             n_layers: int | None = None,
             require_emit_yelt: bool = False) -> ExecutionPlan:
        """Price the auto-candidate engines for a workload on this
        session's data shape; see :meth:`ExecutionPlan.explain`."""
        self._check_open()
        if n_layers is None:
            pf = portfolio if portfolio is not None else self.portfolio
            n_layers = pf.n_layers if pf is not None else 1
        # A degraded pool is not warm capacity: it executes serial
        # inline fallbacks, so the planner must price it that way
        # rather than crediting parallelism that no longer exists.
        pool_degraded = (self._pooled is not None
                         and self._pooled.pool.health.degraded)
        pool_warm = (self._pooled is not None and self._pooled.pool.started
                     and not pool_degraded)
        with self.telemetry.span("session.plan", workload=workload):
            plan = self._planner.plan(
                workload,
                n_trials=self.yet.n_trials,
                n_occurrences=self.yet.n_occurrences,
                n_layers=n_layers,
                pool_warm=pool_warm,
                pool_degraded=pool_degraded,
                transport=self._transport_label(),
                require_emit_yelt=require_emit_yelt,
            )
        self._m_plans.inc()
        return plan

    def _transport_label(self) -> str:
        if self._n_procs > 1 and shm.resolve_transport(self.transport,
                                                       ConfigurationError):
            return "shm"
        return "pickle"

    #: Engine-result detail keys re-exported as per-engine counters
    #: (rows/lanes swept, device uploads — the engine-side telemetry).
    _ENGINE_DETAIL_COUNTERS = ("occurrences_processed", "tail_group_rows",
                               "stack_uploads", "sparse_stack_uploads",
                               "yet_uploads")

    def _observe(self, res: EngineResult, n_layers: int) -> None:
        """Feed a measured run into telemetry and planner calibration."""
        lanes = self.yet.n_occurrences * max(n_layers, 1)
        tel = self.telemetry
        prefix = f"engine.{res.engine}"
        tel.counter(prefix + ".runs").inc()
        tel.counter(prefix + ".seconds").inc(max(res.seconds, 0.0))
        tel.counter(prefix + ".lanes").inc(lanes)
        details = res.details or {}
        for key in self._ENGINE_DETAIL_COUNTERS:
            value = details.get(key)
            if value:
                tel.counter(f"{prefix}.{key}").inc(value)
        try:
            spec = engine_spec(res.engine)
        except EngineError:
            return
        if not spec.auto_candidate:
            return
        # Pooled engines report n_workers, the cluster reports n_nodes;
        # normalising to per-processor keeps calibration comparable with
        # the spec's procs_for() pricing.
        n_procs = int(details.get("n_workers")
                      or details.get("n_nodes") or 1)
        self._planner.observe(res.engine, lanes, res.seconds, n_procs)

    # -- aggregate analysis ------------------------------------------------

    def aggregate(self, portfolio: Portfolio | None = None,
                  engine: str | Engine = "auto", *,
                  emit_yelt: bool = False, **engine_kwargs) -> AnalysisResult:
        """Run one aggregate analysis over staged state.

        ``engine="auto"`` plans the substrate; the chosen
        :class:`~repro.session.planner.ExecutionPlan` rides along in
        ``result.details["plan"]``.  Explicit names resolve through the
        declarative registry (unknown names fail here with the available
        list); an :class:`~repro.core.engines.Engine` *instance* is used
        as-is and keeps its own lifecycle.
        """
        self._check_open()
        pf = portfolio if portfolio is not None else self.portfolio
        if pf is None:
            raise ConfigurationError(
                "no portfolio bound to this session; pass one to aggregate()"
            )
        plan = None
        if isinstance(engine, Engine):
            if engine_kwargs:
                raise EngineError(
                    "engine_kwargs only apply when engine is a name"
                )
            eng = engine
        else:
            name = engine
            if name == "auto":
                if engine_kwargs:
                    raise EngineError(
                        "engine_kwargs require an explicit engine name; "
                        "engine='auto' chooses its own configuration"
                    )
                plan = self.plan("aggregate", portfolio=pf,
                                 require_emit_yelt=emit_yelt)
                name = plan.engine
            spec = engine_spec(name)
            if emit_yelt and not spec.supports_emit_yelt:
                emitters = [n for n in available_engines()
                            if engine_spec(n).supports_emit_yelt]
                raise EngineError(
                    f"engine {name!r} does not emit YELTs; "
                    f"engines that do: {emitters}"
                )
            eng = self.engine(name, **engine_kwargs)
        with self.telemetry.span("session.sweep",
                                 engine=getattr(eng, "name", "engine"),
                                 n_layers=pf.n_layers):
            res = eng.run(pf, self.yet, emit_yelt=emit_yelt)
        self._observe(res, pf.n_layers)
        self._m_aggregates.inc()
        result = AnalysisResult.from_engine(res)
        if plan is not None:
            result.details["plan"] = plan
        return result

    def run_all(self, names: list[str] | None = None,
                portfolio: Portfolio | None = None) -> dict[str, AnalysisResult]:
        """Run several engines over the same staged inputs.

        Every name is validated against the registry *before* any engine
        runs, and pooled engines reuse the session's one staged arena —
        a sweep ships the YET at most once, and a repeat sweep ships it
        zero times.
        """
        self._check_open()
        names = list(names) if names is not None else available_engines()
        for name in names:
            engine_spec(name)
        return {name: self.aggregate(portfolio, engine=name) for name in names}

    # -- serving-style workloads -------------------------------------------

    def pricing_service(self, engine="auto", **kwargs):
        """A :class:`~repro.serve.service.PricingService` bound to this
        session's staged substrate (closed with the session; closing it
        earlier is allowed and leaves the session's pools running)."""
        self._check_open()
        from repro.serve.service import PricingService

        kwargs.setdefault("volatility_loading", self.volatility_loading)
        kwargs.setdefault("tail_loading", self.tail_loading)
        kwargs.setdefault("dense_max_entries", self.dense_max_entries)
        svc = PricingService(self.yet, engine=engine, session=self, **kwargs)
        self._services.append(svc)
        return svc

    def _service(self):
        with self._service_lock:
            if self._default_service is None or self._default_service._closed:
                self._default_service = self.pricing_service()
            return self._default_service

    def quote(self, layer: Layer, timeout: float | None = None):
        """Price one candidate layer against the staged YET."""
        self._check_open()
        self._m_quotes.inc()
        return self._service().quote(layer, timeout=timeout)

    def quote_many(self, layers, timeout: float | None = None) -> list:
        """Price several candidates through one coalesced sweep."""
        self._check_open()
        layers = list(layers)
        self._m_quotes.inc(len(layers))
        return self._service().quote_many(layers, timeout=timeout)

    def ep_curve(self, layer: Layer | None = None, *,
                 engine: str | Engine = "auto") -> EpCurve:
        """An aggregate EP curve over the staged YET.

        With a ``layer``: that layer's curve through the (cached,
        coalesced) pricing path.  Without: the bound portfolio's total
        curve from one aggregate run.
        """
        self._check_open()
        self._m_ep_curves.inc()
        if layer is not None:
            return self._service().ep_curve(layer)
        result = self.aggregate(engine=engine)
        return aep_curve(result.portfolio_ylt)

    def ep_curves(self, portfolio: Portfolio | None = None, *,
                  engine: str | Engine = "auto"):
        """``(per-layer curves, portfolio curve)`` from ONE staged run
        (see :func:`~repro.analytics.ep_curves.portfolio_ep_curves`)."""
        self._check_open()
        result = self.aggregate(portfolio, engine=engine)
        self._m_ep_curves.inc()
        return portfolio_ep_curves(result.ylt_by_layer, result.portfolio_ylt)

    def sensitivities(self, layer: Layer, *, engine: str | Engine = "auto",
                      **kwargs) -> dict[str, float]:
        """Term sensitivities with a warm, session-owned engine: the
        ~10 bump re-runs reuse one staged substrate instead of
        constructing and tearing one down per sweep."""
        self._check_open()
        self._m_sensitivity.inc()
        return term_sensitivities(layer, self.yet, engine=engine,
                                  session=self, **kwargs)
