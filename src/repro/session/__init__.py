"""The session layer: one staged, planner-driven entry point.

========= ==============================================================
module     responsibility
========= ==============================================================
session    :class:`RiskSession` — bind a YET (and optionally a
           portfolio) once, stage it through the shared-memory data
           plane, and expose every stage-2/3 workload (aggregate runs,
           quotes, EP curves, sensitivities) over that one staged
           substrate with a single close.
planner    :class:`EnginePlanner` / :class:`ExecutionPlan` — resolve
           ``engine="auto"`` through the HPC cost model over the
           declarative :class:`~repro.core.engines.EngineSpec` registry,
           with an ``explain()`` rendering of the decision.
========= ==============================================================

Quickstart::

    import repro

    wl = repro.bench.companion_study_workload(n_trials=10_000)
    with repro.RiskSession(wl.yet, wl.portfolio) as session:
        result = session.aggregate()            # engine="auto", planned
        print(result.details["plan"].explain())
        quotes = session.quote_many(list(wl.portfolio))  # same staged YET
        curves, total = session.ep_curves()     # one more staged sweep
"""

from repro.session.planner import (
    EngineEstimate,
    EnginePlanner,
    ExecutionPlan,
    plan_workload,
)
from repro.session.session import RiskSession, SessionStats

__all__ = [
    "EngineEstimate",
    "EnginePlanner",
    "ExecutionPlan",
    "plan_workload",
    "RiskSession",
    "SessionStats",
]
