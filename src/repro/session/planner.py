"""The execution planner: resolve ``engine="auto"`` into a priced plan.

The registry (:mod:`repro.core.engines.registry`) declares what each
engine *can* do and roughly what it costs; the planner turns that plus
the data shape into a decision.  The estimator is the same HPC cost
model that sizes processor bursts at paper scale
(:class:`~repro.hpc.cost_model.StageSpec`): a workload is ``work_items``
layer-occurrence lanes, each candidate engine prices them at its
(EWMA-calibrated) per-processor throughput under Amdahl plus a
communication term, and cold substrates are charged their startup cost
(worker spawn, payload staging) — which is exactly why a session that
keeps its substrate warm gets different, better plans than per-call
entry points.  Simulated substrates (device, cluster) are priced too:
they start from conservative seed rates and pay their per-run payload
transfer (H2D upload, trial scatter) in the startup column on *every*
run — a bus earns no warm credit — so ``engine="auto"`` only routes
work onto them once a measured run has calibrated them faster than the
host engines at a shape where the transfer amortises.

Every decision is auditable: :meth:`ExecutionPlan.explain` renders the
candidate table — throughput, processors, Amdahl fraction, startup,
modelled seconds — so ``engine="auto"`` is never a black box.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engines.registry import auto_candidates, engine_spec
from repro.errors import ConfigurationError
from repro.hpc.cost_model import ThroughputEstimate
from repro.hpc.pool import available_parallelism
from repro.obs import Telemetry

__all__ = ["EngineEstimate", "ExecutionPlan", "EnginePlanner", "plan_workload"]

#: Workload kinds the planner understands.
_WORKLOADS = ("aggregate", "serving", "sensitivity")

#: Nominal micro-batch size used to shape a "serving" plan: the cost of
#: one coalesced sweep is what the dispatcher choice should optimise.
_NOMINAL_BATCH = 8


@dataclass(frozen=True)
class EngineEstimate:
    """One candidate engine's modelled cost for a workload."""

    engine: str
    n_procs: int
    throughput_per_proc: float
    calibrated: bool
    runtime_seconds: float
    startup_seconds: float
    eligible: bool = True
    note: str = ""

    @property
    def total_seconds(self) -> float:
        return self.runtime_seconds + self.startup_seconds


@dataclass(frozen=True)
class ExecutionPlan:
    """A resolved ``engine="auto"`` decision, with its evidence.

    Attributes
    ----------
    workload:
        What is being planned (``"aggregate"``, ``"serving"``,
        ``"sensitivity"``).
    engine:
        The chosen registry engine name.
    n_procs:
        Parallelism the choice was priced at.
    transport:
        Payload transport the substrate will use (``"shm"``,
        ``"pickle"``, or ``"inline"`` for in-process sweeps).
    n_trials / n_occurrences / n_layers / work_items:
        The data shape the plan was priced against (``work_items`` =
        occurrence lanes = occurrences x layers).
    estimates:
        Every candidate's :class:`EngineEstimate`, eligible or not —
        the full evidence :meth:`explain` renders.
    """

    workload: str
    engine: str
    n_procs: int
    transport: str
    n_trials: int
    n_occurrences: int
    n_layers: int
    work_items: float
    estimates: tuple[EngineEstimate, ...] = field(default_factory=tuple)

    @property
    def chosen(self) -> EngineEstimate:
        """The winning candidate's estimate."""
        for est in self.estimates:
            if est.engine == self.engine:
                return est
        raise ConfigurationError(
            f"plan chose {self.engine!r} but carries no estimate for it"
        )

    @property
    def modelled_seconds(self) -> float:
        return self.chosen.total_seconds

    def explain(self) -> str:
        """Human-readable account of why this engine was chosen."""
        lines = [
            f"ExecutionPlan(workload={self.workload!r}, engine={self.engine!r})",
            f"  data shape: {self.n_trials:,} trials x "
            f"{self.n_occurrences:,} occurrences x {self.n_layers} "
            f"layer{'s' if self.n_layers != 1 else ''} = "
            f"{self.work_items:,.0f} lanes",
            f"  transport:  {self.transport}",
            "  cost model (lanes/s per proc; Amdahl + comm + startup):",
        ]
        for est in self.estimates:
            marker = "*" if est.engine == self.engine else " "
            origin = "measured" if est.calibrated else "seed"
            detail = (f"throughput {est.throughput_per_proc:.3g} ({origin}), "
                      f"startup {est.startup_seconds:.3f}s")
            if est.note:
                detail += f"; {est.note}"
            if not est.eligible:
                lines.append(f"  {marker} {est.engine:<11} ineligible — {est.note}")
                continue
            lines.append(
                f"  {marker} {est.engine:<11} {est.n_procs:>2} proc"
                f"{'s' if est.n_procs != 1 else ' '} "
                f"est {est.total_seconds:.4f}s  ({detail})"
            )
        runners_up = [e for e in self.estimates
                      if e.eligible and e.engine != self.engine]
        if runners_up:
            best_other = min(runners_up, key=lambda e: e.total_seconds)
            lines.append(
                f"  chosen: {self.engine} — modelled "
                f"{self.modelled_seconds:.4f}s vs {best_other.engine} "
                f"{best_other.total_seconds:.4f}s"
            )
        else:
            lines.append(f"  chosen: {self.engine} — only eligible candidate")
        return "\n".join(lines)


class EnginePlanner:
    """Prices auto-candidate engines for a session's workloads.

    Parameters
    ----------
    n_workers:
        Host parallelism pooled substrates are priced at (``None`` =
        the machine's available parallelism).
    smoothing:
        EWMA weight for throughput calibration; each observed staged run
        (:meth:`observe`) sharpens later plans.
    telemetry:
        An :class:`~repro.obs.Telemetry` plane to report into (a session
        passes its own).  Each plan emits a ``plan.decision`` event with
        the chosen engine and every priced alternative; each calibration
        update emits ``plan.calibration``.  ``None`` = a private plane.
    """

    def __init__(self, n_workers: int | None = None,
                 smoothing: float = 0.3,
                 telemetry: Telemetry | None = None) -> None:
        self.n_workers = (n_workers if n_workers is not None
                          else available_parallelism())
        if self.n_workers < 1:
            self.n_workers = 1
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._m_plans = self.telemetry.counter("planner.plans")
        self._m_calibrations = self.telemetry.counter("planner.calibrations")
        #: Per-engine calibrated throughput, seeded from the registry.
        self._estimates: dict[str, ThroughputEstimate] = {}

    def _estimate_for(self, name: str) -> ThroughputEstimate:
        est = self._estimates.get(name)
        if est is None:
            est = ThroughputEstimate(engine_spec(name).lane_throughput)
            self._estimates[name] = est
        return est

    def throughput(self, name: str) -> float:
        """Current lanes/s/proc estimate for one engine."""
        return self._estimate_for(name).rate

    def observe(self, engine: str, lanes: float, seconds: float,
                n_procs: int = 1) -> None:
        """Calibrate one engine's throughput from a measured run."""
        est = self._estimate_for(engine)
        est.observe(lanes, seconds, n_procs)
        self._m_calibrations.inc()
        self.telemetry.gauge(
            f"planner.throughput.{engine}").set(est.rate)
        self.telemetry.event("plan.calibration", engine=engine,
                             lanes_per_second_per_proc=est.rate,
                             n_procs=n_procs)

    def plan(self, workload: str, *, n_trials: int, n_occurrences: int,
             n_layers: int = 1, pool_warm: bool = False,
             pool_degraded: bool = False, transport: str = "shm",
             require_emit_yelt: bool = False) -> ExecutionPlan:
        """Price every auto candidate and choose the cheapest.

        ``pool_warm`` waives process-pool startup (the session already
        paid it); ``pool_degraded`` prices process-pool candidates as
        the serial fallback they have become — one processor, no warm
        credit, noted in ``explain()`` — so a degraded pool is never
        charged as parallel capacity; ``transport`` is recorded for the
        chosen substrate (in-process engines always report
        ``"inline"``); ``require_emit_yelt`` marks engines without YELT
        support ineligible (a capability constraint, visible in
        ``explain()``).
        """
        if workload not in _WORKLOADS:
            raise ConfigurationError(
                f"unknown workload {workload!r}; expected one of {_WORKLOADS}"
            )
        n_layers = max(int(n_layers), 1)
        if workload == "serving":
            # A serving plan prices one coalesced micro-batch: the
            # request's own layer count is 1, but the dispatcher will
            # sweep a whole window's worth of candidates at once.
            n_layers = max(n_layers, _NOMINAL_BATCH)
        lanes = float(max(n_occurrences, 1) * n_layers)

        estimates: list[EngineEstimate] = []
        for spec in auto_candidates():
            est = self._estimate_for(spec.name)
            procs = spec.procs_for(self.n_workers)
            if require_emit_yelt and not spec.supports_emit_yelt:
                estimates.append(EngineEstimate(
                    engine=spec.name, n_procs=procs,
                    throughput_per_proc=est.rate, calibrated=est.calibrated,
                    runtime_seconds=float("inf"), startup_seconds=0.0,
                    eligible=False, note="does not emit YELTs",
                ))
                continue
            if spec.parallelism == "process-pool" and self.n_workers <= 1:
                estimates.append(EngineEstimate(
                    engine=spec.name, n_procs=1,
                    throughput_per_proc=est.rate, calibrated=est.calibrated,
                    runtime_seconds=float("inf"), startup_seconds=0.0,
                    eligible=False, note="single-core host (no pool to win on)",
                ))
                continue
            note = ""
            if spec.parallelism == "process-pool" and pool_degraded:
                # The pool has fallen back to serial inline execution:
                # price what will actually run (one processor, no spawn
                # to pay — and no warm parallel capacity to credit).
                procs = 1
                note = "pool degraded — priced as serial fallback"
            runtime = spec.stage_spec(lanes, est.rate).runtime_seconds(procs)
            startup = 0.0
            if (spec.parallelism == "process-pool" and not pool_warm
                    and not pool_degraded):
                startup = spec.startup_seconds
            elif spec.parallelism in ("simulated-device", "simulated-cluster"):
                # A device/cluster run re-ships the YET over its link
                # every time — unlike a warm pool, a bus earns no warm
                # credit, so launch + transfer are charged on every run.
                transfer = spec.transfer_seconds(max(n_occurrences, 1))
                startup = spec.startup_seconds + transfer
                if transfer > 0:
                    note = "per-run payload transfer charged in startup"
            estimates.append(EngineEstimate(
                engine=spec.name, n_procs=procs,
                throughput_per_proc=est.rate, calibrated=est.calibrated,
                runtime_seconds=runtime, startup_seconds=startup,
                note=note,
            ))
        eligible = [e for e in estimates if e.eligible]
        if not eligible:
            raise ConfigurationError(
                "no auto-candidate engine is eligible on this host"
            )
        chosen = min(eligible, key=lambda e: e.total_seconds)
        chosen_spec = engine_spec(chosen.engine)
        self._m_plans.inc()
        self.telemetry.counter(f"planner.chosen.{chosen.engine}").inc()
        self.telemetry.event(
            "plan.decision",
            workload=workload, engine=chosen.engine,
            modelled_seconds=chosen.total_seconds,
            n_procs=chosen.n_procs,
            alternatives={e.engine: (e.total_seconds if e.eligible else None)
                          for e in estimates if e.engine != chosen.engine},
        )
        return ExecutionPlan(
            workload=workload,
            engine=chosen.engine,
            n_procs=chosen.n_procs,
            transport=(transport if chosen_spec.parallelism == "process-pool"
                       else "inline"),
            n_trials=int(n_trials),
            n_occurrences=int(n_occurrences),
            n_layers=n_layers,
            work_items=lanes,
            estimates=tuple(estimates),
        )


def plan_workload(yet, *, workload: str = "aggregate", n_layers: int = 1,
                  n_workers: int | None = None,
                  pool_warm: bool = False,
                  require_emit_yelt: bool = False) -> ExecutionPlan:
    """One-shot plan for callers without a session (uncalibrated seeds).

    The classic entry points use this for ``engine="auto"``; a
    :class:`~repro.session.RiskSession` plans through its own calibrated
    :class:`EnginePlanner` instead.
    """
    from repro.hpc import shm

    transport = "shm" if shm.shm_available() else "pickle"
    return EnginePlanner(n_workers=n_workers).plan(
        workload,
        n_trials=yet.n_trials,
        n_occurrences=yet.n_occurrences,
        n_layers=n_layers,
        pool_warm=pool_warm,
        transport=transport,
        require_emit_yelt=require_emit_yelt,
    )
