"""HPC substrate: simulated many-core device, cluster, and cost model.

The paper's first strategy for the pipeline's data challenge is
*"accumulation of large memory ... the use of many-core GPUs"* with
chunking into shared and constant memory (§II).  No GPU is assumed here:
:class:`repro.hpc.device.SimulatedGpu` is an explicit device *model* —
memory spaces with real capacities, kernel launches over a block grid —
whose kernels execute as vectorised NumPy.  This preserves what the
paper's claims are about (data-parallel execution and capacity-driven
chunking) without CUDA.  See DESIGN.md §2 for the substitution argument.

The cluster side (:mod:`repro.hpc.cluster`, :mod:`repro.hpc.collectives`)
models the "thousands of processors" stages with MPI-style collectives and
an analytic cost model (:mod:`repro.hpc.cost_model`) used for the burst /
elasticity analysis (experiment E9).

The *real* (not simulated) parallel substrate is :mod:`repro.hpc.pool`
plus the zero-copy shared-memory data plane of :mod:`repro.hpc.shm`:
large read-only payloads (the YET, stacked kernels) live in
``multiprocessing.shared_memory`` segments and cross process boundaries
as ~100-byte handles instead of pickled replicas.  The pool is
*supervised*: per-call :class:`~repro.hpc.pool.TaskPolicy` deadlines and
retries resubmit lost work idempotently, :class:`~repro.hpc.pool.PoolHealth`
records deaths/timeouts/degradation, and :mod:`repro.hpc.faults` injects
deterministic failures for chaos testing.
"""

from repro.hpc.faults import FaultEvent, FaultPlan, FaultSpec
from repro.hpc.pool import PoolHealth, TaskPolicy, WorkPool
from repro.hpc.shm import SharedArena, ShmArrayHandle, ShmSlab, shm_available
from repro.hpc.memory import MemorySpace, TransferLedger
from repro.hpc.device import DeviceProperties, SimulatedGpu
from repro.hpc.kernel import Kernel, LaunchStats
from repro.hpc.chunking import ChunkPlanner, DeviceChunkPlan
from repro.hpc.cluster import SimCluster
from repro.hpc.collectives import Collectives
from repro.hpc.scheduler import StaticScheduler, DynamicScheduler
from repro.hpc.cost_model import PipelineCostModel, StageSpec
from repro.hpc.occupancy import OccupancyLimits, OccupancyResult, occupancy
from repro.hpc.elasticity import DemandPhase, ProvisioningPlan, compare_provisioning

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "PoolHealth",
    "TaskPolicy",
    "WorkPool",
    "SharedArena",
    "ShmArrayHandle",
    "ShmSlab",
    "shm_available",
    "MemorySpace",
    "TransferLedger",
    "DeviceProperties",
    "SimulatedGpu",
    "Kernel",
    "LaunchStats",
    "ChunkPlanner",
    "DeviceChunkPlan",
    "SimCluster",
    "Collectives",
    "StaticScheduler",
    "DynamicScheduler",
    "PipelineCostModel",
    "StageSpec",
    "OccupancyLimits",
    "OccupancyResult",
    "occupancy",
    "DemandPhase",
    "ProvisioningPlan",
    "compare_provisioning",
]
