"""Device occupancy model: how many blocks fit per multiprocessor.

CUDA-era performance tuning revolves around *occupancy* — the number of
resident blocks per streaming multiprocessor, limited by whichever
resource (shared memory, threads, the hardware block slot count) runs
out first.  The chunk planner decides chunk sizes; this model explains
*why* a given per-block shared-memory budget throttles parallelism,
which is the quantitative backdrop for the companion study's
shared-memory frugality.

The arithmetic follows the CUDA occupancy calculator for Fermi-class
devices (the paper's hardware era): per-SM limits of 8 blocks, 1536
threads, and 48 KiB shared memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hpc.device import DeviceProperties

__all__ = ["OccupancyLimits", "OccupancyResult", "occupancy"]


@dataclass(frozen=True)
class OccupancyLimits:
    """Per-SM hardware ceilings (Fermi defaults)."""

    max_blocks_per_sm: int = 8
    max_threads_per_sm: int = 1536

    def __post_init__(self):
        if self.max_blocks_per_sm <= 0 or self.max_threads_per_sm <= 0:
            raise ConfigurationError("occupancy limits must be positive")


@dataclass(frozen=True)
class OccupancyResult:
    """Occupancy for one kernel configuration.

    Attributes
    ----------
    blocks_per_sm:
        Resident blocks per multiprocessor.
    occupancy_fraction:
        Resident threads over the SM's thread ceiling (the headline
        number of the CUDA calculator).
    limiter:
        Which resource bound first: ``"shared"``, ``"threads"``, or
        ``"blocks"``.
    """

    blocks_per_sm: int
    occupancy_fraction: float
    limiter: str


def occupancy(
    properties: DeviceProperties,
    threads_per_block: int,
    shared_bytes_per_block: int,
    limits: OccupancyLimits | None = None,
) -> OccupancyResult:
    """Occupancy of a kernel configuration on the modelled device."""
    if threads_per_block <= 0:
        raise ConfigurationError("threads_per_block must be positive")
    if shared_bytes_per_block < 0:
        raise ConfigurationError("shared_bytes_per_block must be non-negative")
    limits = limits or OccupancyLimits()

    by_blocks = limits.max_blocks_per_sm
    by_threads = limits.max_threads_per_sm // threads_per_block
    if shared_bytes_per_block > 0:
        by_shared = properties.shared_mem_per_block_bytes // shared_bytes_per_block
    else:
        by_shared = by_blocks  # shared memory never binds
    if by_threads == 0 or by_shared == 0:
        # A single block that exceeds a per-SM resource cannot launch.
        raise ConfigurationError(
            "kernel configuration exceeds per-SM resources "
            f"(threads_per_block={threads_per_block}, "
            f"shared_bytes_per_block={shared_bytes_per_block})"
        )
    blocks = min(by_blocks, by_threads, by_shared)
    if blocks == by_shared and by_shared < min(by_blocks, by_threads):
        limiter = "shared"
    elif blocks == by_threads and by_threads < min(by_blocks, by_shared):
        limiter = "threads"
    else:
        limiter = "blocks"
    fraction = min(1.0, blocks * threads_per_block / limits.max_threads_per_sm)
    return OccupancyResult(blocks_per_sm=blocks,
                           occupancy_fraction=fraction,
                           limiter=limiter)
