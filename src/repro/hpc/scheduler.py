"""Task scheduling policies for simulated parallel execution.

Two schedulers cover the pipeline's needs: static block scheduling for
the regular stage-2 trial loop (every trial costs about the same) and a
dynamic greedy scheduler for irregular stage-1 event batches (footprint
sizes vary wildly).  Both expose the assignment and the modelled makespan
so benches can report load balance, and both are exact algorithms over
caller-supplied task costs — no randomness.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ClusterError

__all__ = ["Assignment", "StaticScheduler", "DynamicScheduler"]


@dataclass(frozen=True)
class Assignment:
    """Result of scheduling: per-worker task lists and modelled times."""

    tasks_by_worker: tuple[tuple[int, ...], ...]
    seconds_by_worker: tuple[float, ...]

    @property
    def makespan(self) -> float:
        return max(self.seconds_by_worker) if self.seconds_by_worker else 0.0

    @property
    def imbalance(self) -> float:
        """Makespan divided by mean worker time (1.0 = perfectly balanced)."""
        if not self.seconds_by_worker:
            return 1.0
        mean = sum(self.seconds_by_worker) / len(self.seconds_by_worker)
        return self.makespan / mean if mean > 0 else 1.0


class StaticScheduler:
    """Contiguous block assignment (rank ``i`` gets the ``i``-th span).

    This is the natural YET decomposition: each worker simulates a
    contiguous block of trials, so output ordering is trivial.
    """

    def assign(self, task_seconds: Sequence[float], n_workers: int) -> Assignment:
        if n_workers <= 0:
            raise ClusterError(f"n_workers must be positive, got {n_workers}")
        n = len(task_seconds)
        base, extra = divmod(n, n_workers)
        tasks: list[tuple[int, ...]] = []
        seconds: list[float] = []
        start = 0
        for w in range(n_workers):
            count = base + (1 if w < extra else 0)
            span = tuple(range(start, start + count))
            tasks.append(span)
            seconds.append(sum(task_seconds[i] for i in span))
            start += count
        return Assignment(tuple(tasks), tuple(seconds))


class DynamicScheduler:
    """Greedy longest-processing-time-first assignment (a 4/3-approximation).

    Models a work-queue runtime: big tasks are claimed first, each by the
    least-loaded worker.  Used for stage-1 event batches and MapReduce
    task-time makespans.
    """

    def assign(self, task_seconds: Sequence[float], n_workers: int) -> Assignment:
        if n_workers <= 0:
            raise ClusterError(f"n_workers must be positive, got {n_workers}")
        order = sorted(range(len(task_seconds)), key=lambda i: -task_seconds[i])
        heap: list[tuple[float, int]] = [(0.0, w) for w in range(n_workers)]
        heapq.heapify(heap)
        tasks: list[list[int]] = [[] for _ in range(n_workers)]
        for i in order:
            load, w = heapq.heappop(heap)
            tasks[w].append(i)
            heapq.heappush(heap, (load + task_seconds[i], w))
        seconds = [sum(task_seconds[i] for i in ts) for ts in tasks]
        return Assignment(tuple(tuple(ts) for ts in tasks), tuple(seconds))
