"""Zero-copy shared-memory data plane for the multiprocess paths.

The paper's finding is that risk analytics is data-movement bound: the
YET is the dominant payload and every redundant copy of it erases the
gains of parallel aggregation.  Before this module the multicore and
serving paths moved that payload the slowest way Python offers —
pickling it through pool initializers and per-task argument tuples.

This module provides the transport that removes those copies:

- :class:`SharedArena` owns ``multiprocessing.shared_memory`` segments
  and *places* NumPy arrays into them (one packed segment per ``place``
  call).  The arena is the owner: closing it unlinks every segment it
  created, and a module-level registry plus an ``atexit`` safety net
  track what is still live so tests can assert nothing leaked.
- :class:`ShmArrayHandle` is the wire format: a tiny picklable
  descriptor (segment name + dtype + shape + byte offset) that
  re-attaches as a read-only NumPy *view* in any process.  Shipping a
  gigabyte array costs ~100 bytes of pickle plus one page-table mapping
  in each worker, paid once per (worker, segment).
- :class:`ShmSlab` is a *reusable* segment for transient payloads — the
  serving layer writes each micro-batch's stacked kernel into the same
  slab, so steady-state batches cost one ``memcpy`` instead of a pickle
  round-trip per task.  The slab grows geometrically (fresh segment,
  old one unlinked) when a payload outgrows it, and its segments carry
  generation-tagged names so worker-side caches evict an outgrown
  generation's mapping the moment they attach its successor.

Attach-side bookkeeping: each process caches its segment mappings, so N
handles into one segment map it once, and attached segments are
*untracked* from the ``resource_tracker`` (ownership stays with the
creating process; the tracker would otherwise unlink segments still in
use when the first worker exits).

Availability is probed once (:func:`shm_available`): hosts without a
usable ``/dev/shm`` (or a ``shared_memory``-less Python) report
``False`` and every caller falls back to the pickle transport with
identical results.
"""

from __future__ import annotations

import atexit
import os
import re
import secrets
import threading
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

try:  # pragma: no cover - import guard for exotic builds
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = [
    "TRANSPORTS",
    "HandleShipment",
    "SharedArena",
    "ShmArrayHandle",
    "ShmSlab",
    "active_segment_names",
    "resolve_transport",
    "shm_available",
    "validate_transport",
]

#: Transport choices shared by every shm consumer (engines, dispatchers).
TRANSPORTS = ("auto", "shm", "pickle")

#: Byte alignment of packed arrays (cache-line sized).
_ALIGN = 64

_AVAILABLE: bool | None = None


def shm_available() -> bool:
    """Whether this host can create shared-memory segments (probed once)."""
    global _AVAILABLE
    if _AVAILABLE is None:
        if _shared_memory is None:
            _AVAILABLE = False
        else:
            try:
                probe = _shared_memory.SharedMemory(create=True, size=8)
                probe.close()
                probe.unlink()
                _AVAILABLE = True
            except Exception:
                _AVAILABLE = False
    return _AVAILABLE


def validate_transport(transport: str, exc_type: type = ConfigurationError) -> None:
    """Reject unknown transport names at construction time."""
    if transport not in TRANSPORTS:
        raise exc_type(
            f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
        )


def resolve_transport(transport: str, exc_type: type = ConfigurationError) -> bool:
    """Whether a consumer configured with ``transport`` should use shm.

    ``"pickle"`` is an explicit opt-out; ``"shm"`` demands the plane and
    raises ``exc_type`` on hosts without it; ``"auto"`` takes whatever
    the availability probe reports.  One rule, shared by the multicore
    engine and the pooled dispatcher, so the fallback semantics cannot
    drift apart.
    """
    validate_transport(transport, exc_type)
    if transport == "pickle":
        return False
    available = shm_available()
    if transport == "shm" and not available:
        raise exc_type(
            "transport='shm' requested but shared memory is unavailable "
            "on this host"
        )
    return available


# ---------------------------------------------------------------------------
# owner-side registry (leak tracking) and attach-side cache
# ---------------------------------------------------------------------------

#: Segments created *by this process* that have not been unlinked yet.
_OWNED: dict[str, "_shared_memory.SharedMemory"] = {}
_OWNED_LOCK = threading.Lock()

#: Segments this process attached to (worker-side), mapped once each.
_ATTACHED: dict[str, "_shared_memory.SharedMemory"] = {}
_ATTACHED_LOCK = threading.Lock()


def active_segment_names() -> frozenset[str]:
    """Names of segments this process created and has not yet unlinked.

    The test suite's leak fixture asserts this is empty after the run:
    every arena and slab must have been closed by whoever owned it.
    """
    with _OWNED_LOCK:
        return frozenset(_OWNED)


def _register_owned(segment) -> None:
    with _OWNED_LOCK:
        _OWNED[segment.name] = segment


def _unlink_owned(name: str) -> None:
    with _OWNED_LOCK:
        segment = _OWNED.pop(name, None)
    if segment is not None:
        try:
            segment.close()
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


@atexit.register
def _cleanup_leaked_segments() -> None:  # pragma: no cover - process teardown
    """Safety net: unlink anything an owner forgot (crash paths)."""
    for name in list(active_segment_names()):
        _unlink_owned(name)


def _attach_untracked(name: str):
    """Attach without resource-tracker registration.

    Ownership (and unlink) stays with the creating process.  Attachers
    must not register: the tracker would tear the segment down when the
    first worker exits, and — its cache being a name-keyed set shared by
    every forked child — even register-then-unregister pairs from two
    workers collide and spam ``KeyError`` warnings.  Python 3.13 has
    ``track=False`` for exactly this; earlier interpreters get the
    registration suppressed for the duration of the attach (we hold
    ``_ATTACHED_LOCK``, so the window is ours).
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track= parameter
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        try:
            resource_tracker.register = lambda *a, **k: None
            return _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


#: Slab segment names are generation-tagged (``repro-slab-<uid>-g<N>``)
#: so the *attach* side can recognise two generations of the same slab
#: and evict the stale mapping the moment the newer one arrives.
_SLAB_NAME_RE = re.compile(r"^repro-slab-(?P<uid>[0-9a-f]+)-g(?P<gen>\d+)$")


def _evict_stale_slab_mappings(name: str) -> None:
    """Unmap older generations of the slab ``name`` belongs to.

    Caller holds ``_ATTACHED_LOCK``.  Without this, a worker that
    attached generation N of a slab kept that mapping cached until
    process exit after the slab rolled to generation N+1 — one stale
    mapping (and its pinned pages) leaked per outgrown generation.  A
    mapping still pinned by a live view (``BufferError``) is kept and
    retried at the next generation roll: in-flight readers are never
    yanked.
    """
    match = _SLAB_NAME_RE.match(name)
    if match is None:
        return
    uid, gen = match.group("uid"), int(match.group("gen"))
    for other in list(_ATTACHED):
        other_match = _SLAB_NAME_RE.match(other)
        if (other_match is None or other_match.group("uid") != uid
                or int(other_match.group("gen")) >= gen):
            continue
        try:
            _ATTACHED[other].close()
        except BufferError:  # pragma: no cover - view still live
            continue
        del _ATTACHED[other]


def _attach_segment(name: str):
    """This process's mapping of segment ``name`` (created once, cached).

    The owner's own mapping is reused directly — re-attaching in the
    creating process would double-map and confuse tracker bookkeeping.
    Attaching a newer slab generation evicts the cached mapping of its
    predecessors (see :func:`_evict_stale_slab_mappings`).
    """
    with _OWNED_LOCK:
        owned = _OWNED.get(name)
    if owned is not None:
        return owned
    with _ATTACHED_LOCK:
        segment = _ATTACHED.get(name)
        if segment is None:
            segment = _attach_untracked(name)
            _ATTACHED[name] = segment
            _evict_stale_slab_mappings(name)
    return segment


# ---------------------------------------------------------------------------
# the wire format
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ShmArrayHandle:
    """Picklable descriptor of one array living in a shared segment.

    Pickles as (segment name, dtype string, shape, byte offset) — a few
    hundred bytes regardless of payload size — and :meth:`attach`\\ es as
    a read-only NumPy view in any process that can see the segment.
    """

    segment: str
    dtype: str
    shape: tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        """Payload bytes the handle points at."""
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize

    def attach(self) -> np.ndarray:
        """Map the segment (cached per process) and return the view.

        The view is marked read-only: the data plane is single-writer
        (the owner) / many-reader (the workers), and a worker scribbling
        on a shared lookup would corrupt every sibling's answers.

        Views live exactly as long as their owner: once the creating
        arena/slab is closed, reading an in-process view is undefined
        (the pages are unmapped under it — the same contract as a NumPy
        view over a closed ``mmap``).  Worker-side views survive an
        owner *unlink* — their own mapping pins the pages — which is
        what lets a retired segment drain in-flight readers safely.
        """
        segment = _attach_segment(self.segment)
        view = np.ndarray(
            self.shape, dtype=np.dtype(self.dtype),
            buffer=segment.buf, offset=self.offset,
        )
        view.flags.writeable = False
        return view


class HandleShipment:
    """Base for handle-backed pool payloads (see ``WorkPool``'s
    ``__shm_resolve__`` protocol).

    Pickles as its handles alone; each receiving process materialises
    the payload once, on first touch.  The owning process pre-binds its
    ``local`` payload so serial fallback paths resolve for free.
    Subclasses implement :meth:`_materialise`.
    """

    __slots__ = ("handles", "_local")

    def __init__(self, handles, local=None) -> None:
        self.handles = handles
        self._local = local

    def __getstate__(self):
        return self.handles

    def __setstate__(self, state) -> None:
        self.handles = state
        self._local = None

    def __shm_resolve__(self):
        if self._local is None:
            self._local = self._materialise(self.handles)
        return self._local

    def _materialise(self, handles):
        raise NotImplementedError


def _aligned(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN


def _pack_into(segment, arrays) -> tuple[ShmArrayHandle, ...]:
    """Copy ``arrays`` into ``segment`` at aligned offsets; return handles."""
    handles = []
    offset = 0
    for arr in arrays:
        arr = np.ascontiguousarray(arr)
        dest = np.ndarray(arr.shape, dtype=arr.dtype,
                          buffer=segment.buf, offset=offset)
        np.copyto(dest, arr)
        handles.append(ShmArrayHandle(
            segment=segment.name, dtype=arr.dtype.str,
            shape=tuple(arr.shape), offset=offset,
        ))
        offset += _aligned(arr.nbytes)
    return tuple(handles)


def _total_packed(arrays) -> int:
    # nbytes is stride-independent — no contiguity copy just to size.
    return sum(_aligned(np.asarray(a).nbytes) for a in arrays) or _ALIGN


# ---------------------------------------------------------------------------
# owners
# ---------------------------------------------------------------------------

class SharedArena:
    """Owner of shared-memory segments holding immutable array payloads.

    Each :meth:`place` call packs its arrays into one fresh segment and
    returns their handles; the arena tracks every segment it created and
    :meth:`close` (or the context manager, or the ``atexit`` safety net)
    unlinks them all.  Arenas are cheap — one per long-lived payload
    generation (an engine's staged kernel + YET, a dispatcher's shared
    trial set) keeps ownership obvious.
    """

    def __init__(self) -> None:
        if not shm_available():
            raise ConfigurationError(
                "shared memory is unavailable on this host; gate arena "
                "construction on shm_available()"
            )
        self._segments: list[str] = []
        self._closed = False

    # -- placement ---------------------------------------------------------

    def place(self, *arrays: np.ndarray) -> tuple[ShmArrayHandle, ...]:
        """Copy arrays into one new packed segment; returns their handles."""
        if self._closed:
            raise ConfigurationError("arena is closed")
        if not arrays:
            raise ConfigurationError("place() needs at least one array")
        segment = _shared_memory.SharedMemory(
            create=True, size=_total_packed(arrays)
        )
        _register_owned(segment)
        self._segments.append(segment.name)
        return _pack_into(segment, arrays)

    def share(self, array: np.ndarray) -> ShmArrayHandle:
        """Place a single array (segment-per-array convenience)."""
        return self.place(array)[0]

    # -- introspection -----------------------------------------------------

    @property
    def n_segments(self) -> int:
        return len(self._segments)

    @property
    def nbytes(self) -> int:
        """Bytes of shared memory currently owned by this arena."""
        total = 0
        with _OWNED_LOCK:
            for name in self._segments:
                segment = _OWNED.get(name)
                if segment is not None:
                    total += segment.size
        return total

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Unlink every owned segment (idempotent).

        Any still-live view handed out by this arena's handles becomes
        invalid in this process (see :meth:`ShmArrayHandle.attach`);
        close only after the payload's consumers are done with it.
        """
        if self._closed:
            return
        self._closed = True
        for name in self._segments:
            _unlink_owned(name)
        self._segments.clear()

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


class ShmSlab:
    """A reusable shared segment for transient payloads.

    The serving layer's per-batch kernel changes every batch but its
    *size class* does not: :meth:`pack` writes the batch's arrays into
    the same segment generation after generation, so workers re-attach
    nothing (their cached mapping still covers it) and the steady-state
    ship cost is one owner-side ``memcpy``.  A payload that outgrows the
    slab rolls to a fresh, geometrically larger segment; the old one is
    unlinked (workers holding a stale mapping keep it alive until they
    next attach, so in-flight readers are never yanked).

    Segments are named ``repro-slab-<uid>-g<generation>``: the attach
    side (see :func:`_evict_stale_slab_mappings`) recognises two
    generations of one slab and unmaps the older the moment a worker
    touches the newer, so outgrown generations stop leaking one cached
    mapping each until worker exit.
    """

    def __init__(self, capacity_bytes: int = 1 << 20) -> None:
        if not shm_available():
            raise ConfigurationError(
                "shared memory is unavailable on this host; gate slab "
                "construction on shm_available()"
            )
        if capacity_bytes <= 0:
            raise ConfigurationError("slab capacity must be positive")
        self._capacity = int(capacity_bytes)
        self._segment = None
        self._closed = False
        self._uid = f"{os.getpid():x}{secrets.token_hex(3)}"
        #: Segment rolls since construction (observability for benches).
        self.generations = 0

    @property
    def nbytes(self) -> int:
        """Current segment capacity (0 before first pack)."""
        return self._segment.size if self._segment is not None else 0

    @property
    def n_segments(self) -> int:
        return 1 if self._segment is not None else 0

    @property
    def segment_name(self) -> str | None:
        return self._segment.name if self._segment is not None else None

    def pack(self, *arrays: np.ndarray) -> tuple[ShmArrayHandle, ...]:
        """Write arrays into the slab (reusing the segment when they fit).

        The caller must not pack while readers are mid-flight over the
        previous payload — the dispatch paths satisfy this because a
        batch is fully collected before the next one is staged.
        """
        if self._closed:
            raise ConfigurationError("slab is closed")
        if not arrays:
            raise ConfigurationError("pack() needs at least one array")
        need = _total_packed(arrays)
        if self._segment is None or need > self._segment.size:
            capacity = max(self._capacity, self.nbytes)
            while capacity < need:
                capacity *= 2
            self._roll(capacity)
        return _pack_into(self._segment, arrays)

    # ``place`` aliases ``pack`` so exporters can target an arena or a
    # slab interchangeably.
    def place(self, *arrays: np.ndarray) -> tuple[ShmArrayHandle, ...]:
        return self.pack(*arrays)

    def _roll(self, capacity: int) -> None:
        if self._segment is not None:
            _unlink_owned(self._segment.name)
        name = f"repro-slab-{self._uid}-g{self.generations + 1}"
        try:
            self._segment = _shared_memory.SharedMemory(
                create=True, size=capacity, name=name
            )
        except FileExistsError:  # pragma: no cover - uid collision
            self._uid = f"{os.getpid():x}{secrets.token_hex(3)}"
            self._segment = _shared_memory.SharedMemory(
                create=True, size=capacity,
                name=f"repro-slab-{self._uid}-g{self.generations + 1}",
            )
        _register_owned(self._segment)
        self.generations += 1

    def close(self) -> None:
        """Unlink the current segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._segment is not None:
            _unlink_owned(self._segment.name)
            self._segment = None

    def __enter__(self) -> "ShmSlab":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
