"""A simulated distributed-memory cluster.

Stages 2 and 3 of the pipeline *"put together thousands or even tens of
thousands of processors"* (§II).  :class:`SimCluster` models such a
machine in one process: a set of nodes with individual memory capacities,
a network characterised by per-message latency and bandwidth, and an SPMD
``run`` primitive.  Computation executes for real (serially, node by
node); communication *time* is modelled analytically, which is what the
burst/elasticity experiment needs — the actual payload bytes are moved
for real so results stay exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import ClusterError
from repro.hpc.memory import MemorySpace

__all__ = ["NetworkModel", "SimCluster", "NodeHandle"]


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth (alpha-beta) model of the interconnect."""

    latency_s: float = 5e-6
    bandwidth_bytes_per_s: float = 5e9

    def transfer_seconds(self, nbytes: int) -> float:
        """Modelled time to move one message of ``nbytes``."""
        if nbytes < 0:
            raise ClusterError(f"negative message size {nbytes}")
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s


@dataclass
class NodeHandle:
    """One simulated node: rank, private memory space, private namespace."""

    rank: int
    memory: MemorySpace
    store: dict = field(default_factory=dict)


class SimCluster:
    """A fixed-size simulated cluster of distributed-memory nodes.

    Parameters
    ----------
    n_nodes:
        Number of nodes (ranks ``0 .. n_nodes-1``).
    node_mem_bytes:
        Per-node memory capacity (accounted, like the device model).
    network:
        Interconnect model used by the collectives' time accounting.
    """

    def __init__(self, n_nodes: int, node_mem_bytes: int = 16 * 1024**3,
                 network: NetworkModel | None = None) -> None:
        if n_nodes <= 0:
            raise ClusterError(f"cluster needs at least one node, got {n_nodes}")
        self.nodes = [
            NodeHandle(rank, MemorySpace(f"node{rank}", node_mem_bytes))
            for rank in range(n_nodes)
        ]
        self.network = network or NetworkModel()
        #: Accumulated modelled communication time (seconds).
        self.comm_seconds = 0.0
        #: Accumulated modelled communication volume (bytes).
        self.comm_bytes = 0

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def node(self, rank: int) -> NodeHandle:
        if not (0 <= rank < self.n_nodes):
            raise ClusterError(f"no rank {rank} in a {self.n_nodes}-node cluster")
        return self.nodes[rank]

    def run(self, fn: Callable[[NodeHandle], object],
            ranks: Sequence[int] | None = None) -> list[object]:
        """Execute ``fn`` on each selected node (SPMD), returning results.

        Execution is sequential over ranks — results are identical to a
        truly parallel run because nodes share nothing except through the
        collectives, which are barriers.
        """
        selected = range(self.n_nodes) if ranks is None else ranks
        return [fn(self.node(r)) for r in selected]

    def account_message(self, nbytes: int) -> None:
        """Record one point-to-point message in the time/volume model."""
        self.comm_seconds += self.network.transfer_seconds(nbytes)
        self.comm_bytes += nbytes
