"""Capacity-tracked memory spaces and a host↔device transfer ledger.

A :class:`MemorySpace` is a named arena with a hard byte capacity;
allocations are real NumPy arrays, but every allocation is accounted so
exceeding the modelled device's global/shared/constant capacity raises
:class:`~repro.errors.CapacityError` — exactly the constraint that forces
the chunking strategy the paper describes.  The :class:`TransferLedger`
counts bytes moved between host and device, which the device engine
reports so benches can show the PCIe-traffic effect of chunk sizing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CapacityError, DeviceError

__all__ = ["Allocation", "MemorySpace", "TransferLedger"]


@dataclass(frozen=True)
class Allocation:
    """Handle to one allocation inside a :class:`MemorySpace`."""

    space: str
    name: str
    array: np.ndarray

    @property
    def nbytes(self) -> int:
        return self.array.nbytes


class MemorySpace:
    """A named memory arena with a byte capacity.

    Parameters
    ----------
    name:
        Space name (``"global"``, ``"shared"``, ``"constant"``...).
    capacity_bytes:
        Hard limit on the sum of live allocation sizes.
    """

    def __init__(self, name: str, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise CapacityError(f"capacity must be positive, got {capacity_bytes}")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self._allocations: dict[str, Allocation] = {}
        self.peak_bytes = 0

    @property
    def used_bytes(self) -> int:
        return sum(a.nbytes for a in self._allocations.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def alloc(self, name: str, shape, dtype) -> np.ndarray:
        """Allocate a zeroed array under ``name``."""
        return self.put(name, np.zeros(shape, dtype=dtype), copy=False)

    def put(self, name: str, array: np.ndarray, copy: bool = True) -> np.ndarray:
        """Store ``array`` under ``name`` (copying by default)."""
        if name in self._allocations:
            raise DeviceError(f"{self.name}: buffer {name!r} already allocated")
        data = np.array(array, copy=True) if copy else np.asarray(array)
        if data.nbytes > self.free_bytes:
            raise CapacityError(
                f"{self.name}: allocating {data.nbytes} B for {name!r} exceeds "
                f"free capacity {self.free_bytes} B "
                f"(capacity {self.capacity_bytes} B, used {self.used_bytes} B)"
            )
        self._allocations[name] = Allocation(self.name, name, data)
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)
        return data

    def get(self, name: str) -> np.ndarray:
        try:
            return self._allocations[name].array
        except KeyError:
            raise DeviceError(f"{self.name}: no buffer {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._allocations

    def free(self, name: str) -> None:
        if name not in self._allocations:
            raise DeviceError(f"{self.name}: cannot free unknown buffer {name!r}")
        del self._allocations[name]

    def free_all(self) -> None:
        self._allocations.clear()

    def buffers(self) -> list[str]:
        return sorted(self._allocations)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MemorySpace({self.name!r}, used={self.used_bytes}/"
            f"{self.capacity_bytes} B, buffers={self.buffers()})"
        )


@dataclass
class TransferLedger:
    """Counts host↔device transfer traffic.

    The simulated device has no real bus, but the *volume* of data an
    implementation would move is a property of the algorithm, not the
    hardware — so we account it faithfully.
    """

    h2d_bytes: int = 0
    d2h_bytes: int = 0
    h2d_transfers: int = 0
    d2h_transfers: int = 0
    history: list[tuple[str, int]] = field(default_factory=list)

    def record_h2d(self, nbytes: int) -> None:
        self.h2d_bytes += nbytes
        self.h2d_transfers += 1
        self.history.append(("h2d", nbytes))

    def record_d2h(self, nbytes: int) -> None:
        self.d2h_bytes += nbytes
        self.d2h_transfers += 1
        self.history.append(("d2h", nbytes))

    @property
    def total_bytes(self) -> int:
        return self.h2d_bytes + self.d2h_bytes
