"""Elastic vs fixed provisioning over the pipeline's demand profile.

§II closes with the observation that the pipeline's *"sudden burst of
data"* — stage 1 wanting <10 processors while stages 2–3 want thousands
— creates *"elastic demand for the storage of data, data retrieval, data
processing and data integration [that] makes cloud-based computing
attractive"*.  This module makes that claim a computation: given a
timeline of stage demands (processors × duration), compare

- **fixed provisioning**: a cluster sized to the peak demand, paid for
  around the clock; and
- **elastic provisioning**: capacity acquired per phase (with a spin-up
  overhead per scale-up event),

in node-hours.  The ratio is the economic content of the paper's
elasticity argument; E9's bench note quotes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError

__all__ = ["DemandPhase", "ProvisioningPlan", "compare_provisioning"]


@dataclass(frozen=True)
class DemandPhase:
    """One phase of the workload: ``n_procs`` needed for ``hours``."""

    name: str
    n_procs: int
    hours: float

    def __post_init__(self):
        if self.n_procs < 0:
            raise ConfigurationError("n_procs must be non-negative")
        if self.hours < 0:
            raise ConfigurationError("hours must be non-negative")

    @property
    def node_hours(self) -> float:
        return self.n_procs * self.hours


@dataclass(frozen=True)
class ProvisioningPlan:
    """Cost summary of one provisioning strategy."""

    strategy: str
    node_hours: float
    peak_procs: int
    utilisation: float  # useful node-hours / paid node-hours


def compare_provisioning(
    phases: Sequence[DemandPhase],
    spin_up_overhead_hours: float = 0.1,
) -> dict[str, ProvisioningPlan]:
    """Fixed-at-peak vs elastic node-hour cost for a demand timeline.

    Fixed provisioning pays ``peak × total_duration``; elastic pays each
    phase's own demand plus a spin-up surcharge (``overhead × procs``)
    whenever a phase needs more processors than the previous one — the
    cloud's instance-start cost.
    """
    if not phases:
        raise ConfigurationError("need at least one demand phase")
    if spin_up_overhead_hours < 0:
        raise ConfigurationError("spin_up_overhead_hours must be non-negative")

    total_hours = sum(p.hours for p in phases)
    useful = sum(p.node_hours for p in phases)
    peak = max(p.n_procs for p in phases)

    fixed_cost = peak * total_hours
    fixed = ProvisioningPlan(
        strategy="fixed",
        node_hours=fixed_cost,
        peak_procs=peak,
        utilisation=useful / fixed_cost if fixed_cost > 0 else 1.0,
    )

    elastic_cost = 0.0
    prev = 0
    for p in phases:
        elastic_cost += p.node_hours
        if p.n_procs > prev:
            elastic_cost += (p.n_procs - prev) * spin_up_overhead_hours
        prev = p.n_procs
    elastic = ProvisioningPlan(
        strategy="elastic",
        node_hours=elastic_cost,
        peak_procs=peak,
        utilisation=useful / elastic_cost if elastic_cost > 0 else 1.0,
    )
    return {"fixed": fixed, "elastic": elastic}
