"""The simulated many-core GPU.

:class:`SimulatedGpu` is the library's stand-in for the paper's many-core
GPU (§II: *"methods for accumulating large shared memory includes the use
of many-core GPUs ... utilising shared and constant memory as much as
possible"*).  It is a *model with teeth*: the three memory spaces have
hard capacities (Fermi-class defaults: 3 GiB global, 48 KiB shared per
block, 64 KiB constant), uploads are accounted through a transfer ledger,
and kernels run block-by-block under those constraints.  What it does not
model is cycle-level timing — execution speed is whatever vectorised
NumPy achieves, which is the substitution DESIGN.md §2 documents.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import DEFAULTS, ReproConfig
from repro.errors import CapacityError, DeviceError
from repro.hpc.kernel import Kernel, LaunchStats
from repro.hpc.memory import MemorySpace, TransferLedger

__all__ = ["DeviceProperties", "SimulatedGpu"]


@dataclass(frozen=True)
class DeviceProperties:
    """Static capabilities of a simulated device."""

    name: str = "SimGPU (Fermi-class model)"
    global_mem_bytes: int = DEFAULTS.device_global_mem_bytes
    shared_mem_per_block_bytes: int = DEFAULTS.device_shared_mem_bytes
    constant_mem_bytes: int = DEFAULTS.device_constant_mem_bytes
    num_sms: int = DEFAULTS.device_num_sms
    threads_per_block: int = DEFAULTS.device_threads_per_block

    @classmethod
    def from_config(cls, config: ReproConfig) -> "DeviceProperties":
        return cls(
            global_mem_bytes=config.device_global_mem_bytes,
            shared_mem_per_block_bytes=config.device_shared_mem_bytes,
            constant_mem_bytes=config.device_constant_mem_bytes,
            num_sms=config.device_num_sms,
            threads_per_block=config.device_threads_per_block,
        )


class SimulatedGpu:
    """A capacity-faithful software model of a CUDA-era GPU.

    Use :meth:`upload` / :meth:`upload_constant` to move host arrays into
    the device's global / constant spaces, :meth:`launch` to run a
    :class:`~repro.hpc.kernel.Kernel` over resident buffers, and
    :meth:`download` to read results back.  All movement is tallied in
    :attr:`transfers`.
    """

    def __init__(self, properties: DeviceProperties | None = None) -> None:
        self.properties = properties or DeviceProperties()
        self.global_mem = MemorySpace("global", self.properties.global_mem_bytes)
        self.constant_mem = MemorySpace("constant", self.properties.constant_mem_bytes)
        self.transfers = TransferLedger()
        self.launch_log: list[LaunchStats] = []

    # -- data movement -----------------------------------------------------

    def upload(self, name: str, array: np.ndarray) -> np.ndarray:
        """Copy a host array into global memory."""
        data = self.global_mem.put(name, array, copy=True)
        self.transfers.record_h2d(data.nbytes)
        return data

    def alloc(self, name: str, shape, dtype) -> np.ndarray:
        """Allocate an uninitialised (zeroed) global buffer — no transfer."""
        return self.global_mem.alloc(name, shape, dtype)

    def upload_constant(self, name: str, array: np.ndarray) -> np.ndarray:
        """Copy a small lookup table into constant memory.

        Raises :class:`~repro.errors.CapacityError` if the table exceeds
        the 64 KiB-class constant space — callers fall back to a
        global-memory layout, which is precisely the optimisation choice
        the chunking experiment (E5) measures.
        """
        data = self.constant_mem.put(name, array, copy=True)
        self.transfers.record_h2d(data.nbytes)
        return data

    def download(self, name: str) -> np.ndarray:
        """Copy a global buffer back to the host."""
        data = self.global_mem.get(name)
        self.transfers.record_d2h(data.nbytes)
        return data.copy()

    def free(self, name: str) -> None:
        self.global_mem.free(name)

    def reset(self) -> None:
        """Free everything (as between benchmark repetitions)."""
        self.global_mem.free_all()
        self.constant_mem.free_all()

    # -- execution -----------------------------------------------------------

    def launch(self, kernel: Kernel, n_rows: int,
               rows_per_block: int | None = None, **buffer_names: str) -> LaunchStats:
        """Launch ``kernel`` over resident buffers.

        ``buffer_names`` maps kernel parameter names to the names of
        buffers previously uploaded/allocated on this device; passing raw
        arrays is rejected to keep the host/device boundary explicit.
        """
        buffers = {}
        for param, buf_name in buffer_names.items():
            if not isinstance(buf_name, str):
                raise DeviceError(
                    f"kernel parameter {param!r} must name a device buffer; "
                    "upload host arrays first"
                )
            buffers[param] = self.global_mem.get(buf_name)
        rpb = (self.properties.threads_per_block if rows_per_block is None
               else rows_per_block)
        stats = kernel.launch(
            n_rows,
            rpb,
            self.properties.shared_mem_per_block_bytes,
            constant=_ConstantView(self.constant_mem),
            **buffers,
        )
        self.launch_log.append(stats)
        return stats

    def fits_constant(self, nbytes: int) -> bool:
        """Would an ``nbytes`` allocation fit in free constant memory?"""
        return nbytes <= self.constant_mem.free_bytes


class _ConstantView:
    """Read-only mapping view over the constant memory space."""

    def __init__(self, space: MemorySpace) -> None:
        self._space = space

    def __getitem__(self, name: str) -> np.ndarray:
        arr = self._space.get(name)
        view = arr.view()
        view.flags.writeable = False
        return view

    def __contains__(self, name: str) -> bool:
        return name in self._space
