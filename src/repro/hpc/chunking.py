"""Chunk planning against device memory capacities.

"The management of large data in memory employs the notion of chunking,
which is utilising shared and constant memory as much as possible" (§II).
The planner answers the two questions a CUDA implementation of aggregate
analysis must answer before any kernel runs:

1. *Global chunking*: how many trial-rows of the YET (plus per-trial
   outputs) fit in global memory at once?  The input is streamed through
   the device in chunks of that size.
2. *Lookup placement*: does the ELT lookup table fit in constant memory
   (fast, broadcast-cached) or must it live in global memory?

The plan is pure arithmetic over the schema row widths, so it is exact
and testable independently of execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CapacityError, ConfigurationError
from repro.hpc.device import DeviceProperties

__all__ = ["DeviceChunkPlan", "ChunkPlanner"]


@dataclass(frozen=True)
class DeviceChunkPlan:
    """Result of planning one workload onto one device.

    Attributes
    ----------
    rows_per_chunk:
        YET rows resident on-device per streaming step.
    n_chunks:
        Number of streaming steps to cover the workload.
    rows_per_block:
        Rows handled per kernel block (bounded by shared-memory budget).
    lookup_in_constant:
        Whether the event-loss lookup fits constant memory.
    resident_bytes:
        Global-memory bytes occupied at the peak of one step.
    """

    rows_per_chunk: int
    n_chunks: int
    rows_per_block: int
    lookup_in_constant: bool
    resident_bytes: int


class ChunkPlanner:
    """Plans chunk sizes for streaming a rowset through a device.

    Parameters
    ----------
    properties:
        Capabilities of the target device.
    global_budget_fraction:
        Fraction of global memory the plan may occupy (leaving headroom for
        the CUDA context/driver, as real codes must).
    """

    def __init__(self, properties: DeviceProperties,
                 global_budget_fraction: float = 0.9) -> None:
        if not (0.0 < global_budget_fraction <= 1.0):
            raise ConfigurationError(
                f"global_budget_fraction must lie in (0, 1], got {global_budget_fraction}"
            )
        self.properties = properties
        self.global_budget_fraction = global_budget_fraction

    @property
    def budget_bytes(self) -> int:
        """Global-memory bytes the plan may occupy."""
        return int(self.properties.global_mem_bytes * self.global_budget_fraction)

    def plan(
        self,
        n_rows: int,
        row_bytes: int,
        lookup_bytes: int,
        shared_bytes_per_row: int = 8,
        max_rows_per_chunk: int | None = None,
        resident_bytes: int = 0,
    ) -> DeviceChunkPlan:
        """Plan streaming ``n_rows`` of ``row_bytes`` each with a lookup table.

        ``shared_bytes_per_row`` is the per-row shared-memory need of the
        kernel (e.g. one f8 accumulator per in-flight trial).
        ``resident_bytes`` is unconditionally global-resident state beside
        the streamed rows (output accumulators, lookups the caller has
        already decided to spill) — unlike ``lookup_bytes``, it is never
        assumed to fit constant memory.
        """
        if n_rows < 0:
            raise ConfigurationError(f"n_rows must be non-negative, got {n_rows}")
        if row_bytes <= 0:
            raise ConfigurationError(f"row_bytes must be positive, got {row_bytes}")
        if lookup_bytes < 0:
            raise ConfigurationError(f"lookup_bytes must be non-negative, got {lookup_bytes}")
        if resident_bytes < 0:
            raise ConfigurationError(f"resident_bytes must be non-negative, got {resident_bytes}")

        budget = self.budget_bytes
        lookup_in_constant = lookup_bytes <= self.properties.constant_mem_bytes
        global_for_rows = (budget - resident_bytes
                           - (0 if lookup_in_constant else lookup_bytes))
        if global_for_rows < row_bytes:
            raise CapacityError(
                f"device global budget {budget} B cannot hold lookup "
                f"({lookup_bytes} B) plus resident state ({resident_bytes} B) "
                f"plus one {row_bytes} B row"
            )
        rows_per_chunk = global_for_rows // row_bytes
        if max_rows_per_chunk is not None:
            if max_rows_per_chunk <= 0:
                raise ConfigurationError("max_rows_per_chunk must be positive")
            rows_per_chunk = min(rows_per_chunk, max_rows_per_chunk)
        rows_per_chunk = min(rows_per_chunk, n_rows) if n_rows else rows_per_chunk

        if shared_bytes_per_row <= 0:
            raise ConfigurationError("shared_bytes_per_row must be positive")
        rows_per_block = min(
            self.properties.shared_mem_per_block_bytes // shared_bytes_per_row,
            max(rows_per_chunk, 1),
        )
        if rows_per_block == 0:
            raise CapacityError(
                f"one row needs {shared_bytes_per_row} B shared memory but the "
                f"block limit is {self.properties.shared_mem_per_block_bytes} B"
            )

        n_chunks = 0 if n_rows == 0 else -(-n_rows // rows_per_chunk)
        resident = (rows_per_chunk * row_bytes + resident_bytes
                    + (0 if lookup_in_constant else lookup_bytes))
        return DeviceChunkPlan(
            rows_per_chunk=rows_per_chunk,
            n_chunks=n_chunks,
            rows_per_block=rows_per_block,
            lookup_in_constant=lookup_in_constant,
            resident_bytes=resident,
        )
