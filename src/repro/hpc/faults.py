"""Deterministic fault injection for the supervised execution stack.

Recovery code that is never exercised is recovery code that does not
work.  The MapReduce sibling of the source paper leans on task
re-execution as its whole fault-tolerance story; this module is the
harness that lets the tests and the E17 bench *prove* the equivalent
story here — worker deaths, deadline overruns, corrupted payloads, and
leaked shared-memory segments are injected on demand, deterministically,
and the suite asserts the answers come back bit-identical anyway.

A :class:`FaultPlan` is a seeded list of :class:`FaultSpec` injections
keyed by the pool's global task sequence number: *"kill the worker
running task 3"*, *"delay task 7 by 50 ms"*, *"poison task 2's
payload"*.  Injections are consumed **parent-side** at submission time
(:meth:`FaultPlan.take`), so a resubmitted task — which draws a fresh
sequence number — runs clean unless the plan says otherwise: one
``kill`` means exactly one death, which is what makes recovery latency
measurable.

Wiring: :class:`~repro.hpc.pool.WorkPool` consults :func:`active_plan`
per submitted task.  Nothing is consulted (one attribute read) unless a
plan is installed — either programmatically (:func:`install` /
:func:`inject`) or through the ``REPRO_FAULT_PLAN`` environment
variable (``"kill@3,delay@7:0.05,poison@2"``), the gate CI chaos jobs
flip without touching code.  Injection applies only to *pooled* task
dispatch; serial/inline execution (including degraded-mode fallback)
never injects — a ``kill`` there would take the caller down with it.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, ReproError

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "PoisonedPayloadError",
    "active_plan",
    "apply_fault",
    "clear",
    "inject",
    "install",
]

#: Environment variable holding a plan spec (see :meth:`FaultPlan.from_env`).
ENV_VAR = "REPRO_FAULT_PLAN"

#: Injection kinds a plan understands.
FAULT_KINDS = ("kill", "delay", "poison", "orphan")

#: Exit code of a fault-killed worker (distinctive in core-dump triage).
KILL_EXIT_CODE = 23


class PoisonedPayloadError(ReproError):
    """A task's payload arrived corrupted (injected by a fault plan).

    Stands in for the real-world failure class of a truncated or
    bit-flipped pickle: the task fails *cleanly* in the worker (unlike a
    kill, the process survives).  Retryable under the default
    :class:`~repro.hpc.pool.TaskPolicy` — corruption in flight is
    transient by nature, and the resubmitted payload is re-pickled from
    the intact parent-side object.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One injection: do ``kind`` to global task number ``task_seq``.

    ``delay_seconds`` applies to ``"delay"``; ``nbytes`` sizes the
    segment an ``"orphan"`` injection leaks.  Specs are tiny and
    picklable — the worker receives the spec, never the plan.
    """

    kind: str
    task_seq: int
    delay_seconds: float = 0.0
    nbytes: int = 1 << 12

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.task_seq < 0:
            raise ConfigurationError("task_seq must be non-negative")
        if self.delay_seconds < 0:
            raise ConfigurationError("delay_seconds must be non-negative")


@dataclass
class FaultEvent:
    """Parent-side record of one consumed injection (observability)."""

    kind: str
    task_seq: int
    at_seconds: float


class FaultPlan:
    """A deterministic, consumable schedule of fault injections.

    Parameters
    ----------
    specs:
        The :class:`FaultSpec` injections, keyed by global task sequence
        number.  Two specs on the same sequence number are rejected —
        a plan must read unambiguously.
    seed:
        Recorded for provenance (benches stamp it into their JSON);
        the plan itself is fully explicit, nothing is drawn at random.

    Each spec fires **at most once** (:meth:`take` consumes it); a plan
    can therefore be asserted drained (:attr:`exhausted`) at the end of
    a test, proving every scheduled fault actually happened.
    """

    def __init__(self, specs, seed: int = 0) -> None:
        specs = tuple(specs)
        by_seq: dict[int, FaultSpec] = {}
        for spec in specs:
            if spec.task_seq in by_seq:
                raise ConfigurationError(
                    f"duplicate fault at task_seq={spec.task_seq}"
                )
            by_seq[spec.task_seq] = spec
        self.seed = seed
        self._pending = by_seq
        #: Consumed injections, in firing order.
        self.events: list[FaultEvent] = []
        #: Segment names leaked by ``orphan`` injections (reclaimable).
        self.orphaned: list[str] = []
        self._lock = threading.Lock()
        self._t0 = time.perf_counter()

    # -- construction helpers ----------------------------------------------

    @classmethod
    def kill_task(cls, task_seq: int, **kwargs) -> "FaultPlan":
        """Plan with a single worker kill at ``task_seq``."""
        return cls([FaultSpec("kill", task_seq)], **kwargs)

    @classmethod
    def delay_task(cls, task_seq: int, delay_seconds: float,
                   **kwargs) -> "FaultPlan":
        """Plan delaying ``task_seq`` by ``delay_seconds``."""
        return cls([FaultSpec("delay", task_seq,
                              delay_seconds=delay_seconds)], **kwargs)

    @classmethod
    def poison_task(cls, task_seq: int, **kwargs) -> "FaultPlan":
        """Plan poisoning ``task_seq``'s payload."""
        return cls([FaultSpec("poison", task_seq)], **kwargs)

    @classmethod
    def from_env(cls, value: str | None = None) -> "FaultPlan | None":
        """Parse ``REPRO_FAULT_PLAN`` (or an explicit string).

        Grammar: comma-separated ``kind@seq`` items, ``delay`` taking an
        optional ``:seconds`` suffix — e.g. ``"kill@3,delay@7:0.05"``.
        Returns ``None`` for an unset/empty variable.
        """
        if value is None:
            value = os.environ.get(ENV_VAR, "")
        value = value.strip()
        if not value:
            return None
        specs = []
        for item in value.split(","):
            item = item.strip()
            try:
                kind, _, rest = item.partition("@")
                seq_str, _, delay_str = rest.partition(":")
                specs.append(FaultSpec(
                    kind, int(seq_str),
                    delay_seconds=float(delay_str) if delay_str else 0.0,
                ))
            except (ValueError, ConfigurationError) as exc:
                raise ConfigurationError(
                    f"bad {ENV_VAR} item {item!r}: {exc}"
                ) from exc
        return cls(specs)

    # -- consumption (parent-side) -----------------------------------------

    @property
    def exhausted(self) -> bool:
        """Whether every scheduled injection has fired."""
        with self._lock:
            return not self._pending

    @property
    def n_pending(self) -> int:
        with self._lock:
            return len(self._pending)

    def take(self, task_seq: int) -> FaultSpec | None:
        """Consume and return the injection for ``task_seq`` (or None).

        ``orphan`` injections are applied here, in the parent — the leak
        being simulated is an *owner* forgetting a segment — and return
        ``None`` so the task itself runs clean.
        """
        with self._lock:
            spec = self._pending.pop(task_seq, None)
            if spec is None:
                return None
            self.events.append(FaultEvent(
                spec.kind, task_seq, time.perf_counter() - self._t0
            ))
        if spec.kind == "orphan":
            self._orphan_segment(spec.nbytes)
            return None
        return spec

    def _orphan_segment(self, nbytes: int) -> None:
        """Leak one owned segment, as a crashed owner would.

        The segment lands in the owner registry with no arena tracking
        it, so :func:`repro.hpc.shm.active_segment_names` reports it and
        the ``atexit`` safety net (or :meth:`reclaim_orphans`) is what
        stands between it and a stranded ``/dev/shm`` entry.
        """
        from repro.hpc import shm

        if not shm.shm_available():  # pragma: no cover - shm-less host
            return
        segment = shm._shared_memory.SharedMemory(create=True, size=nbytes)
        shm._register_owned(segment)
        with self._lock:
            self.orphaned.append(segment.name)

    def reclaim_orphans(self) -> int:
        """Unlink every segment this plan orphaned; returns the count."""
        from repro.hpc import shm

        with self._lock:
            names, self.orphaned = self.orphaned[:], []
        for name in names:
            shm._unlink_owned(name)
        return len(names)

    def report(self) -> dict:
        """JSON-ready account of what fired (benches embed this)."""
        with self._lock:
            return {
                "seed": self.seed,
                "events": [
                    {"kind": e.kind, "task_seq": e.task_seq,
                     "at_seconds": e.at_seconds}
                    for e in self.events
                ],
                "pending": len(self._pending),
                "orphaned": list(self.orphaned),
            }


# ---------------------------------------------------------------------------
# the process-wide switch
# ---------------------------------------------------------------------------

_ACTIVE: FaultPlan | None = None
_ENV_CHECKED = False
_STATE_LOCK = threading.Lock()


def install(plan: FaultPlan) -> FaultPlan:
    """Make ``plan`` the process-wide active plan (replacing any)."""
    global _ACTIVE, _ENV_CHECKED
    with _STATE_LOCK:
        _ACTIVE = plan
        _ENV_CHECKED = True
    return plan


def clear() -> None:
    """Remove the active plan (and forget the env probe, so a later
    ``REPRO_FAULT_PLAN`` change is picked up)."""
    global _ACTIVE, _ENV_CHECKED
    with _STATE_LOCK:
        _ACTIVE = None
        _ENV_CHECKED = False


def active_plan() -> FaultPlan | None:
    """The installed plan, consulting ``REPRO_FAULT_PLAN`` once."""
    global _ACTIVE, _ENV_CHECKED
    if _ACTIVE is not None:
        return _ACTIVE
    if not _ENV_CHECKED:
        with _STATE_LOCK:
            if not _ENV_CHECKED:
                _ACTIVE = FaultPlan.from_env()
                _ENV_CHECKED = True
    return _ACTIVE


@contextmanager
def inject(plan: FaultPlan):
    """Scope a plan to a ``with`` block (tests and benches use this)."""
    install(plan)
    try:
        yield plan
    finally:
        clear()


# ---------------------------------------------------------------------------
# worker-side application
# ---------------------------------------------------------------------------

def apply_fault(spec: FaultSpec, fn, *args):
    """Run ``fn(*args)`` under one injection (picklable task wrapper).

    ``kill`` exits the worker process hard (no cleanup, no exception —
    the executor observes a vanished worker exactly as it would a
    SIGKILL'd one); ``delay`` sleeps first, which is how deadline
    overruns are manufactured; ``poison`` raises
    :class:`PoisonedPayloadError` in place of running the task.
    """
    if spec.kind == "kill":
        os._exit(KILL_EXIT_CODE)
    if spec.kind == "delay":
        time.sleep(spec.delay_seconds)
    elif spec.kind == "poison":
        raise PoisonedPayloadError(
            f"injected payload corruption on task_seq={spec.task_seq}"
        )
    return fn(*args)
