"""Analytic cost model for the pipeline's processor-burst analysis (E9).

The paper's closing observation (§II): *"While in the first stage less
than ten processors may be sufficient to handle the data, in the second
and third stages thousands or even tens of thousands of processors need
to be put together"* — and this elasticity is why cloud provisioning is
attractive.  The model here makes that argument quantitative: each stage
is described by its work volume (rows that must be streamed) and a
measured single-processor throughput; the model answers "how many
processors meet a given deadline", including a simple communication
overhead term so the answer is not naively linear.

Throughputs are *measured* by the bench harness on this machine (not
assumed), so the regenerated burst profile is calibrated to real code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import AnalysisError, ConfigurationError

__all__ = ["StageSpec", "StageRequirement", "PipelineCostModel",
           "ThroughputEstimate", "transfer_stage",
           "DEVICE_SEED_LANES_PER_S", "DISTRIBUTED_SEED_LANES_PER_S",
           "DEVICE_H2D_BYTES_PER_S", "CLUSTER_LINK_BYTES_PER_S"]

#: Planner seed rates (lanes/s/proc) for the simulated substrates.
#: These are deliberately conservative priors — below the vectorized
#: host seed — so ``engine="auto"`` only routes work onto a simulated
#: device/cluster once a *measured* run has calibrated it faster
#: (the EWMA in :class:`ThroughputEstimate` replaces the seed on the
#: first observation).  Host-engine seeds live on their registry specs.
DEVICE_SEED_LANES_PER_S = 1.2e7
DISTRIBUTED_SEED_LANES_PER_S = 4.0e6

#: Seed payload bandwidths for the per-run shipment the simulated
#: substrates pay: a PCIe-class host-to-device bus and a cluster
#: interconnect.  The planner charges ``payload_bytes / bandwidth`` as
#: startup on every run — unlike a warm process pool, the YET crosses
#: the bus each time.
DEVICE_H2D_BYTES_PER_S = 6e9
CLUSTER_LINK_BYTES_PER_S = 1e9


def transfer_stage(name: str, payload_bytes: float,
                   bandwidth_bytes_per_s: float) -> "StageSpec":
    """A :class:`StageSpec` pricing one payload shipment as bus-bound work.

    The work unit is a byte and the throughput is link bandwidth; the
    stage is perfectly serial (one bus), so ``runtime_seconds(1)`` is the
    modelled transfer time.  The engine registry's cost hooks use this to
    price the per-run YET upload of the device and cluster substrates.
    """
    return StageSpec(
        name=name,
        work_items=float(max(payload_bytes, 0.0)),
        throughput_per_proc=float(bandwidth_bytes_per_s),
    )


class ThroughputEstimate:
    """EWMA-calibrated per-processor throughput (work units / second).

    The continuous-calibration idiom shared by the serve admission
    controller and the session planner: start from a declared seed rate,
    let the *first* real observation replace it outright (the seed is a
    prior, not data), and fold later observations in with exponential
    weighting so the estimate tracks the machine without thrashing on
    one noisy batch.  Observations are normalised to per-processor
    before storing — the cost model multiplies parallelism back in when
    it prices a stage, and double-counting it would make pooled-path
    estimates ``n_procs`` times too optimistic.
    """

    __slots__ = ("rate", "smoothing", "calibrated")

    def __init__(self, seed_rate: float, smoothing: float = 0.3) -> None:
        if seed_rate <= 0:
            raise ConfigurationError("seed_rate must be positive")
        if not (0.0 < smoothing <= 1.0):
            raise ConfigurationError("smoothing must lie in (0, 1]")
        self.rate = float(seed_rate)
        self.smoothing = smoothing
        self.calibrated = False

    def observe(self, work_items: float, seconds: float,
                n_procs: int = 1) -> float:
        """Fold one measured run in; returns the updated rate.

        Degenerate observations (no work, no elapsed time) are ignored
        rather than allowed to poison the estimate.
        """
        if work_items <= 0 or seconds <= 0 or n_procs <= 0:
            return self.rate
        observed = work_items / seconds / n_procs
        if self.calibrated:
            a = self.smoothing
            observed = (1 - a) * self.rate + a * observed
        self.rate = observed
        self.calibrated = True
        return self.rate


@dataclass(frozen=True)
class StageSpec:
    """One pipeline stage in the cost model.

    Attributes
    ----------
    name:
        Stage name (``"risk modelling"``...).
    work_items:
        Total work units that must be processed (e.g. event-exposure pairs,
        trial-event lookups, YLT combination rows).
    throughput_per_proc:
        Measured single-processor throughput in work units/second.
    parallel_fraction:
        Amdahl fraction of the stage that parallelises (1.0 = perfectly).
    comm_overhead_per_proc_s:
        Fixed per-processor coordination cost added to the runtime
        (models collective rounds growing with P).
    """

    name: str
    work_items: float
    throughput_per_proc: float
    parallel_fraction: float = 1.0
    comm_overhead_per_proc_s: float = 0.0

    def __post_init__(self):
        if self.work_items < 0:
            raise ConfigurationError("work_items must be non-negative")
        if self.throughput_per_proc <= 0:
            raise ConfigurationError("throughput_per_proc must be positive")
        if not (0.0 < self.parallel_fraction <= 1.0):
            raise ConfigurationError("parallel_fraction must lie in (0, 1]")
        if self.comm_overhead_per_proc_s < 0:
            raise ConfigurationError("comm_overhead_per_proc_s must be non-negative")

    def with_throughput(self, throughput_per_proc: float) -> "StageSpec":
        """The same stage at a re-measured throughput.

        Continuous calibration (the serving layer's admission controller
        re-fits its rate estimate from every observed batch) replaces the
        spec rather than mutating it — specs stay frozen and shareable.
        """
        return replace(self, throughput_per_proc=throughput_per_proc)

    def runtime_seconds(self, n_procs: int) -> float:
        """Modelled stage runtime on ``n_procs`` processors (Amdahl + comm)."""
        if n_procs <= 0:
            raise ConfigurationError(f"n_procs must be positive, got {n_procs}")
        serial_time = self.work_items / self.throughput_per_proc
        amdahl = serial_time * (
            (1.0 - self.parallel_fraction) + self.parallel_fraction / n_procs
        )
        comm = self.comm_overhead_per_proc_s * math.log2(n_procs + 1)
        return amdahl + comm


@dataclass(frozen=True)
class StageRequirement:
    """Processors needed by one stage to meet a deadline."""

    stage: str
    deadline_seconds: float
    n_procs: int
    runtime_seconds: float
    feasible: bool


class PipelineCostModel:
    """Answers processor-provisioning questions over a set of stages."""

    def __init__(self, stages: list[StageSpec], max_procs: int = 1 << 20) -> None:
        if not stages:
            raise ConfigurationError("cost model needs at least one stage")
        names = [s.name for s in stages]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate stage names: {names}")
        self.stages = {s.name: s for s in stages}
        self.max_procs = max_procs

    def stage(self, name: str) -> StageSpec:
        try:
            return self.stages[name]
        except KeyError:
            raise AnalysisError(
                f"unknown stage {name!r}; have {sorted(self.stages)}"
            ) from None

    def procs_for_deadline(self, name: str, deadline_seconds: float) -> StageRequirement:
        """Smallest processor count meeting the deadline (binary search).

        Runtime is monotone decreasing in P until communication overhead
        dominates; we search the monotone region and verify, reporting
        infeasibility when even the best P misses the deadline.
        """
        if deadline_seconds <= 0:
            raise AnalysisError("deadline must be positive")
        spec = self.stage(name)
        if spec.runtime_seconds(1) <= deadline_seconds:
            return StageRequirement(name, deadline_seconds, 1,
                                    spec.runtime_seconds(1), True)
        lo, hi = 1, 2
        while hi < self.max_procs and spec.runtime_seconds(hi) > deadline_seconds:
            # Stop doubling once more processors stop helping.
            if spec.runtime_seconds(hi) >= spec.runtime_seconds(hi // 2):
                best_p, best_t = self._best_point(spec)
                return StageRequirement(name, deadline_seconds, best_p, best_t,
                                        best_t <= deadline_seconds)
            lo, hi = hi, hi * 2
        if hi >= self.max_procs:
            best_p, best_t = self._best_point(spec)
            return StageRequirement(name, deadline_seconds, best_p, best_t,
                                    best_t <= deadline_seconds)
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if spec.runtime_seconds(mid) > deadline_seconds:
                lo = mid
            else:
                hi = mid
        return StageRequirement(name, deadline_seconds, hi,
                                spec.runtime_seconds(hi), True)

    def _best_point(self, spec: StageSpec) -> tuple[int, float]:
        """Processor count minimising modelled runtime (doubling scan)."""
        best_p, best_t = 1, spec.runtime_seconds(1)
        p = 2
        while p <= self.max_procs:
            t = spec.runtime_seconds(p)
            if t < best_t:
                best_p, best_t = p, t
            elif t > best_t * 1.5:
                break
            p *= 2
        return best_p, best_t

    def burst_profile(self, deadlines: dict[str, float]) -> list[StageRequirement]:
        """Processor requirement per stage for the given deadlines.

        The ratio ``max/min`` of the returned processor counts is the
        burst factor the paper's elasticity argument rests on.
        """
        missing = set(deadlines) - set(self.stages)
        if missing:
            raise AnalysisError(f"deadlines given for unknown stages: {sorted(missing)}")
        return [
            self.procs_for_deadline(name, deadline)
            for name, deadline in deadlines.items()
        ]
