"""MPI-style collectives over the simulated cluster.

The distributed aggregate-analysis engine composes its data movement from
the classic collectives: ``scatter`` trial blocks, ``bcast`` the ELT
tables, ``gather``/``reduce`` partial YLTs.  Data is moved for real
(arrays placed in each node's namespace); time is charged to the
cluster's communication ledger using the standard tree-algorithm cost
formulas (log₂P rounds for bcast/reduce, P−1 messages for scatter/gather
from a root), so E9 can reason about communication at scale.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from repro.errors import ClusterError
from repro.hpc.cluster import SimCluster

__all__ = ["Collectives"]


class Collectives:
    """Collective operations bound to one :class:`SimCluster`."""

    def __init__(self, cluster: SimCluster) -> None:
        self.cluster = cluster

    # -- helpers ------------------------------------------------------------

    def _check_root(self, root: int) -> None:
        if not (0 <= root < self.cluster.n_nodes):
            raise ClusterError(f"invalid root rank {root}")

    @staticmethod
    def _nbytes(obj) -> int:
        if isinstance(obj, np.ndarray):
            return obj.nbytes
        if isinstance(obj, (bytes, bytearray)):
            return len(obj)
        return 64  # control-message allowance for small python objects

    # -- collectives -----------------------------------------------------------

    def bcast(self, key: str, value, root: int = 0) -> None:
        """Replicate ``value`` into every node's store under ``key``.

        Time model: binomial tree, ``ceil(log2 P)`` rounds each carrying
        the full payload.
        """
        self._check_root(root)
        nbytes = self._nbytes(value)
        rounds = math.ceil(math.log2(self.cluster.n_nodes)) if self.cluster.n_nodes > 1 else 0
        for _ in range(rounds):
            self.cluster.account_message(nbytes)
        for node in self.cluster.nodes:
            node.store[key] = value

    def scatter(self, key: str, parts: Sequence, root: int = 0) -> None:
        """Distribute ``parts[i]`` to rank ``i`` under ``key``."""
        self._check_root(root)
        if len(parts) != self.cluster.n_nodes:
            raise ClusterError(
                f"scatter needs {self.cluster.n_nodes} parts, got {len(parts)}"
            )
        for rank, part in enumerate(parts):
            if rank != root:
                self.cluster.account_message(self._nbytes(part))
            self.cluster.node(rank).store[key] = part

    def gather(self, key: str, root: int = 0) -> list:
        """Collect each rank's ``key`` value at the root (rank order)."""
        self._check_root(root)
        out = []
        for node in self.cluster.nodes:
            if key not in node.store:
                raise ClusterError(f"rank {node.rank} has no value {key!r} to gather")
            if node.rank != root:
                self.cluster.account_message(self._nbytes(node.store[key]))
            out.append(node.store[key])
        return out

    def reduce(self, key: str, op: Callable = np.add, root: int = 0):
        """Element-wise reduction of each rank's ``key`` array at the root.

        Time model: binomial tree, ``ceil(log2 P)`` rounds of payload-sized
        messages.
        """
        self._check_root(root)
        values = []
        for node in self.cluster.nodes:
            if key not in node.store:
                raise ClusterError(f"rank {node.rank} has no value {key!r} to reduce")
            values.append(node.store[key])
        nbytes = self._nbytes(values[0])
        rounds = math.ceil(math.log2(self.cluster.n_nodes)) if self.cluster.n_nodes > 1 else 0
        for _ in range(rounds):
            self.cluster.account_message(nbytes)
        acc = values[0]
        for v in values[1:]:
            acc = op(acc, v)
        return acc

    def allreduce(self, key: str, op: Callable = np.add):
        """Reduce then broadcast; every node's store gets the result."""
        result = self.reduce(key, op=op, root=0)
        self.bcast(key, result, root=0)
        return result

    def barrier(self) -> None:
        """Synchronisation point (charges 2·log₂P zero-payload messages)."""
        rounds = math.ceil(math.log2(self.cluster.n_nodes)) if self.cluster.n_nodes > 1 else 0
        for _ in range(2 * rounds):
            self.cluster.account_message(0)
