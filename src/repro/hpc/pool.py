"""Portable work-pool wrapper (real processes when available, serial otherwise).

The multicore engine and the MapReduce runtime can execute tasks through
this wrapper.  On single-core or fork-restricted hosts the pool degrades
to serial execution with identical results — parallelism in this library
never changes answers, only wall time.

Worker processes are spawned lazily on first parallel use and reused
across calls; :meth:`WorkPool.close` (or the context manager) is the
shutdown path.  :meth:`WorkPool.starmap_shared` ships one large shared
object (e.g. a stacked portfolio kernel) to each worker exactly once per
call via the pool initializer instead of re-pickling it per task.

**Shared-memory transport.**  The shared object may instead be a tiny
*shipment*: any object exposing ``__shm_resolve__()`` (see
:mod:`repro.hpc.shm`) pickles as a few hundred bytes of segment handles,
and each worker resolves it — attaching the shared-memory segments as
zero-copy views — lazily on first touch.  Executor cycling and
broken-pool recovery then re-send only the handles, never the payload:
:attr:`WorkPool.payload_ships` counts how often a shared object actually
crossed the initializer so callers (and the E15 bench) can assert the
steady state ships nothing.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence

__all__ = ["WorkPool", "available_parallelism"]


def _resolve(shared):
    """A shipment resolves to its payload; anything else passes through."""
    resolver = getattr(shared, "__shm_resolve__", None)
    return resolver() if resolver is not None else shared


def available_parallelism() -> int:
    """Usable worker count on this host."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


#: Per-worker slot for the object shipped by :meth:`WorkPool.starmap_shared`.
_SHARED = None


def _install_shared(value) -> None:
    global _SHARED
    _SHARED = value


def _call_shared(fn: Callable, *args):
    return fn(_resolve(_SHARED), *args)


def _noop(_i: int) -> None:
    """Warm-up barrier task (see :meth:`WorkPool.ensure_started`)."""


class WorkPool:
    """Map tasks over workers; serial when ``n_workers <= 1``.

    Parameters
    ----------
    n_workers:
        Desired workers; ``None`` means the host's available parallelism.

    Notes
    -----
    Tasks must be picklable top-level callables when ``n_workers > 1``.
    The process pool is created lazily on the first parallel call and
    reused until :meth:`close`; ``with WorkPool(...) as pool:`` closes it
    on exit.
    """

    def __init__(self, n_workers: int | None = None) -> None:
        self.n_workers = n_workers if n_workers is not None else available_parallelism()
        if self.n_workers < 1:
            self.n_workers = 1
        self._executor: ProcessPoolExecutor | None = None
        #: The object the current executor's workers were initialised
        #: with (via :meth:`starmap_shared`); ``None`` = no initializer.
        self._shared: object | None = None
        #: Times a shared object was delivered through an executor
        #: build.  For a handle-backed shipment each delivery is a few
        #: hundred bytes; for a plain object it is the full pickle.  A
        #: caller holding one shipment across runs sees this stay at 1.
        self.payload_ships = 0

    # -- lifecycle ---------------------------------------------------------

    def _executor_handle(self, shared=None) -> ProcessPoolExecutor:
        """The persistent executor, (re)built lazily.

        A plain call reuses whatever executor exists (workers ignore an
        installed shared object).  A call with ``shared`` requires the
        workers to have been initialised with *that* object; if the live
        executor was built without it (or with a different one), the
        executor is cycled.  Repeat runs with the same shared object —
        the cached portfolio kernel — therefore ship it zero times.

        A broken executor (a worker died mid-task) is also cycled, so a
        lost worker costs one call, not the pool's lifetime — matching
        the old per-call executors' recovery behaviour.  When ``shared``
        is a handle-backed shipment that cycle re-sends handles, not the
        payload: fresh workers re-attach the still-live segments.
        """
        if self._executor is not None and (
            getattr(self._executor, "_broken", False)
            or (shared is not None and self._shared is not shared)
        ):
            self.close()
        if self._executor is None:
            self._shared = shared
            if shared is not None:
                self.payload_ships += 1
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_workers,
                initializer=_install_shared if shared is not None else None,
                initargs=(shared,) if shared is not None else (),
            )
        return self._executor

    @property
    def started(self) -> bool:
        """Whether worker processes are currently live.

        Planners read this to decide whether a pooled substrate still
        owes its spawn cost or is warm and effectively free to enter.
        """
        return self._executor is not None

    def ensure_started(self, shared=None) -> None:
        """Pre-spawn the worker processes (idempotent warm-up).

        Worker spawn plus the one-time delivery of ``shared`` costs tens
        to hundreds of milliseconds — a latency-sensitive caller (the
        serving layer's pooled dispatcher) pays it here, outside any
        request's SLO window, instead of inside the first batch.  The
        executor alone is not enough — ``ProcessPoolExecutor`` forks
        lazily on submission — so a round of no-op barrier tasks forces
        the processes (and the ``shared`` initializer) to actually run
        now.  Serial pools (``n_workers == 1``) have nothing to start.
        """
        if self.n_workers > 1:
            executor = self._executor_handle(shared=shared)
            list(executor.map(_noop, range(self.n_workers)))

    def close(self) -> None:
        """Shut down worker processes (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            self._shared = None

    def __enter__(self) -> "WorkPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- mapping -----------------------------------------------------------

    def map(self, fn: Callable, items: Sequence) -> list:
        """Apply ``fn`` to each item, preserving order."""
        if self.n_workers == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._executor_handle().map(fn, items))

    def starmap(self, fn: Callable, arg_tuples: Iterable[tuple]) -> list:
        """Apply ``fn(*args)`` per tuple, preserving order."""
        tuples = list(arg_tuples)
        if self.n_workers == 1 or len(tuples) <= 1:
            return [fn(*args) for args in tuples]
        pool = self._executor_handle()
        futures = [pool.submit(fn, *args) for args in tuples]
        return [f.result() for f in futures]

    def starmap_shared(self, fn: Callable, shared,
                       arg_tuples: Iterable[tuple]) -> list:
        """Apply ``fn(shared, *args)`` per tuple, preserving order.

        ``shared`` is delivered to each worker once through the pool
        initializer — not serialised per task — which is the right
        transport for a large read-only object fanned out over many small
        tasks (the multicore engine ships its stacked portfolio kernel
        this way: once per run at most, and zero times on repeat runs
        with the same cached kernel).  A ``shared`` exposing
        ``__shm_resolve__()`` is a shared-memory shipment: the
        initializer delivers only its handles and workers attach the
        payload as zero-copy views on first touch (serial pools resolve
        it inline, which shipments make free by pre-binding their local
        payload).
        """
        tuples = list(arg_tuples)
        if self.n_workers == 1 or len(tuples) <= 1:
            local = _resolve(shared)
            return [fn(local, *args) for args in tuples]
        pool = self._executor_handle(shared=shared)
        futures = [pool.submit(_call_shared, fn, *args) for args in tuples]
        return [f.result() for f in futures]
