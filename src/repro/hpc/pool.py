"""Portable work-pool wrapper (real processes when available, serial otherwise).

The multicore engine and the MapReduce runtime can execute tasks through
this wrapper.  On single-core or fork-restricted hosts the pool degrades
to serial execution with identical results — parallelism in this library
never changes answers, only wall time.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence

__all__ = ["WorkPool", "available_parallelism"]


def available_parallelism() -> int:
    """Usable worker count on this host."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


class WorkPool:
    """Map tasks over workers; serial when ``n_workers <= 1``.

    Parameters
    ----------
    n_workers:
        Desired workers; ``None`` means the host's available parallelism.

    Notes
    -----
    Tasks must be picklable top-level callables when ``n_workers > 1``.
    """

    def __init__(self, n_workers: int | None = None) -> None:
        self.n_workers = n_workers if n_workers is not None else available_parallelism()
        if self.n_workers < 1:
            self.n_workers = 1

    def map(self, fn: Callable, items: Sequence) -> list:
        """Apply ``fn`` to each item, preserving order."""
        if self.n_workers == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        with ProcessPoolExecutor(max_workers=self.n_workers) as pool:
            return list(pool.map(fn, items))

    def starmap(self, fn: Callable, arg_tuples: Iterable[tuple]) -> list:
        """Apply ``fn(*args)`` per tuple, preserving order."""
        tuples = list(arg_tuples)
        if self.n_workers == 1 or len(tuples) <= 1:
            return [fn(*args) for args in tuples]
        with ProcessPoolExecutor(max_workers=self.n_workers) as pool:
            futures = [pool.submit(fn, *args) for args in tuples]
            return [f.result() for f in futures]
