"""Supervised work-pool wrapper (real processes when available, serial otherwise).

The multicore engine and the MapReduce runtime can execute tasks through
this wrapper.  On single-core or fork-restricted hosts the pool degrades
to serial execution with identical results — parallelism in this library
never changes answers, only wall time.

Worker processes are spawned lazily on first parallel use and reused
across calls; :meth:`WorkPool.close` (or the context manager) is the
shutdown path.  :meth:`WorkPool.starmap_shared` ships one large shared
object (e.g. a stacked portfolio kernel) to each worker exactly once per
call via the pool initializer instead of re-pickling it per task.

**Shared-memory transport.**  The shared object may instead be a tiny
*shipment*: any object exposing ``__shm_resolve__()`` (see
:mod:`repro.hpc.shm`) pickles as a few hundred bytes of segment handles,
and each worker resolves it — attaching the shared-memory segments as
zero-copy views — lazily on first touch.  Executor cycling and
broken-pool recovery then re-send only the handles, never the payload:
:attr:`WorkPool.payload_ships` counts how often a shared object actually
crossed the initializer so callers (and the E15 bench) can assert the
steady state ships nothing.

Failure semantics
-----------------
Tasks submitted through :meth:`map` / :meth:`starmap` /
:meth:`starmap_shared` are **supervised** under a per-call
:class:`TaskPolicy`:

- A worker death (``BrokenProcessPool``) loses only the tasks that had
  not finished: the executor is cycled (re-sending handles, never the
  payload) and the lost tasks are resubmitted after a jittered
  exponential backoff.  Tasks must therefore be idempotent — every task
  in this library is a pure function of its arguments, so re-execution
  is the MapReduce recovery story applied to the in-node pool.
- A batch that misses the policy's ``deadline_seconds`` is treated as a
  wedged pool: already-finished results are kept, the executor is shut
  down without waiting, and only the unfinished tasks are resubmitted.
- Exceptions *raised by a task* are retried only when they match the
  policy's ``retryable`` classes (transient-by-nature failures such as
  an injected :class:`~repro.hpc.faults.PoisonedPayloadError`);
  anything else is a genuine error and propagates unchanged.
- When one task exhausts ``max_retries`` the call fails terminally with
  a typed :class:`~repro.errors.ExecutionError` carrying the whole
  failure chain — never a bare executor traceback.
- After ``degrade_after`` *consecutive* terminal call failures the pool
  flips :attr:`PoolHealth.degraded` and every later call runs inline and
  serial: answers stay bit-identical, wall time gets worse, and the
  session planner stops charging this substrate as warm.
  :meth:`reset_health` is the operator's path back to pooled execution.

:attr:`WorkPool.health` (a :class:`PoolHealth`) records deaths, retries,
timeouts, cycles, and the degraded flag for callers up the stack.
Deterministic fault injection for all of the above lives in
:mod:`repro.hpc.faults` and is consulted only when a plan is installed.
"""

from __future__ import annotations

import itertools
import os
import random
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.errors import ConfigurationError, ExecutionError
from repro.hpc import faults
from repro.obs import Telemetry

__all__ = ["PoolHealth", "TaskPolicy", "WorkPool", "available_parallelism"]


def _resolve(shared):
    """A shipment resolves to its payload; anything else passes through."""
    resolver = getattr(shared, "__shm_resolve__", None)
    return resolver() if resolver is not None else shared


def available_parallelism() -> int:
    """Usable worker count on this host."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class TaskPolicy:
    """Per-call supervision contract for pooled task execution.

    Attributes
    ----------
    deadline_seconds:
        Wall-clock budget for one dispatch attempt of the call's batch
        (``None`` = no deadline).  A missed deadline keeps finished
        results, cycles the executor, and resubmits the rest — it is a
        *retry* trigger, not a terminal failure, until ``max_retries``
        runs out.
    max_retries:
        Resubmissions allowed **per task** beyond its first attempt.
    backoff_seconds:
        Base of the exponential backoff between retry cycles.
    backoff_jitter:
        Uniform jitter fraction added to each backoff sleep (decorrelates
        thundering-herd resubmission; drawn from the pool's seeded RNG so
        tests stay deterministic).
    retryable:
        Extra exception classes raised *by tasks* that supervision may
        retry.  Infrastructure failures (worker death, deadline) are
        always retryable and need not be listed.
    """

    deadline_seconds: float | None = None
    max_retries: int = 2
    backoff_seconds: float = 0.05
    backoff_jitter: float = 0.25
    retryable: tuple = (faults.PoisonedPayloadError,)

    def __post_init__(self) -> None:
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ConfigurationError(
                "deadline_seconds must be positive (or None)"
            )
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if self.backoff_seconds < 0 or self.backoff_jitter < 0:
            raise ConfigurationError("backoff must be non-negative")


class PoolHealth:
    """Observable record of one pool's failures and recoveries.

    Exposed as :attr:`WorkPool.health` and surfaced upward by the pooled
    dispatcher, the multicore engine, and the session — the "operational
    failure data as a first-class signal" the ML-for-ODA codesign paper
    argues for.

    Since the telemetry plane landed this is a *view over registry
    metrics*: each counter attribute reads a ``pool.<name>`` counter in
    the owning pool's :class:`~repro.obs.Telemetry` (offset by a
    baseline so :meth:`reset` can zero the view without breaking counter
    monotonicity), and the degraded flag mirrors a ``pool.degraded``
    gauge plus ``pool.degraded`` / ``pool.recovered`` events on
    transitions.  Attribute reads and ``+=`` writes keep working exactly
    as before, so supervision code and existing callers are unchanged —
    but attribute access is **deprecated** for consumers: scrape the
    owning component's telemetry (or :meth:`snapshot`) instead.
    """

    #: Counter-backed attributes, exported as ``pool.<name>``.
    _COUNTER_FIELDS = ("worker_deaths", "timeouts", "retries",
                       "task_faults", "executor_cycles", "calls",
                       "call_failures", "degraded_calls")

    def __init__(self, telemetry: Telemetry | None = None) -> None:
        self._tel = telemetry if telemetry is not None else Telemetry()
        self._counters = {name: self._tel.counter(f"pool.{name}")
                          for name in self._COUNTER_FIELDS}
        self._base = {name: self._counters[name].value
                      for name in self._COUNTER_FIELDS}
        self._degraded_gauge = self._tel.gauge("pool.degraded")
        self._degraded = False
        self.consecutive_failures = 0
        self.last_error: str | None = None

    @property
    def degraded(self) -> bool:
        return self._degraded

    @degraded.setter
    def degraded(self, value: bool) -> None:
        value = bool(value)
        if value and not self._degraded:
            self._tel.event("pool.degraded", last_error=self.last_error,
                            consecutive_failures=self.consecutive_failures)
        elif self._degraded and not value:
            self._tel.event("pool.recovered")
        self._degraded = value
        self._degraded_gauge.set(1.0 if value else 0.0)

    def record_success(self) -> None:
        self.consecutive_failures = 0

    def record_call_failure(self, error: BaseException,
                            degrade_after: int) -> None:
        self.call_failures += 1
        self.consecutive_failures += 1
        self.last_error = f"{type(error).__name__}: {error}"
        if self.consecutive_failures >= degrade_after:
            self.degraded = True

    def reset(self) -> None:
        """Zero the view (rebaseline the underlying monotone counters)
        and leave degraded mode."""
        for name, counter in self._counters.items():
            self._base[name] = counter.value
        self.consecutive_failures = 0
        self.degraded = False
        self.last_error = None

    def snapshot(self) -> dict:
        """JSON-ready flat dict in the ``pool.*`` dot-key convention of
        :mod:`repro.obs` (benches and ops endpoints embed this)."""
        out = {f"pool.{name}": getattr(self, name)
               for name in self._COUNTER_FIELDS}
        out["pool.consecutive_failures"] = self.consecutive_failures
        out["pool.degraded"] = self.degraded
        out["pool.last_error"] = self.last_error
        return out


def _counter_view(attr: str) -> property:
    """A ``PoolHealth`` attribute backed by a registry counter.

    Reads subtract the reset baseline; writes only accept growth (the
    ``+=`` idiom supervision uses), preserving counter monotonicity.
    """

    def fget(self: PoolHealth) -> int:
        return int(self._counters[attr].value - self._base[attr])

    def fset(self: PoolHealth, value: int) -> None:
        # Writes arrive as `health.attr += n` read-modify-write cycles;
        # under a concurrent writer the re-read here can exceed `value`.
        # A non-positive delta means the increment was already counted —
        # drop it rather than decrease a monotone counter.
        delta = value - fget(self)
        if delta > 0:
            self._counters[attr].inc(delta)

    return property(fget, fset, doc=f"Counter view of pool.{attr}.")


for _attr in PoolHealth._COUNTER_FIELDS:
    setattr(PoolHealth, _attr, _counter_view(_attr))
del _attr


#: Per-worker slot for the object shipped by :meth:`WorkPool.starmap_shared`.
_SHARED = None


def _install_shared(value) -> None:
    global _SHARED
    _SHARED = value


def _call_shared(fn: Callable, *args):
    return fn(_resolve(_SHARED), *args)


def _call_plain(fn: Callable, *args):
    return fn(*args)


def _noop(_i: int) -> None:
    """Warm-up barrier task (see :meth:`WorkPool.ensure_started`)."""


class WorkPool:
    """Map tasks over workers; serial when ``n_workers <= 1``.

    Parameters
    ----------
    n_workers:
        Desired workers; ``None`` means the host's available parallelism.
    policy:
        Default :class:`TaskPolicy` for calls that do not pass their own.
    degrade_after:
        Consecutive terminal call failures before the pool flips to
        degraded (inline serial) execution.
    seed:
        Seed for the backoff-jitter RNG (determinism for tests/benches).

    Notes
    -----
    Tasks must be picklable top-level callables when ``n_workers > 1``,
    and idempotent: supervision re-executes lost tasks (see the module
    docstring's failure semantics).  The process pool is created lazily
    on the first parallel call and reused until :meth:`close`;
    ``with WorkPool(...) as pool:`` closes it on exit.
    """

    def __init__(self, n_workers: int | None = None, *,
                 policy: TaskPolicy | None = None,
                 degrade_after: int = 3,
                 seed: int = 0,
                 telemetry: Telemetry | None = None) -> None:
        self.n_workers = n_workers if n_workers is not None else available_parallelism()
        if self.n_workers < 1:
            self.n_workers = 1
        if degrade_after < 1:
            raise ConfigurationError("degrade_after must be >= 1")
        self.policy = policy if policy is not None else TaskPolicy()
        self.degrade_after = degrade_after
        #: The pool's telemetry plane; a session passes its own so one
        #: scrape covers the whole stack, a standalone pool gets a
        #: private enabled plane.
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.health = PoolHealth(self.telemetry)
        self._m_payload_ships = self.telemetry.counter("pool.payload_ships")
        self._m_faults_injected = self.telemetry.counter(
            "pool.faults_injected")
        self._m_call_seconds = self.telemetry.histogram("pool.call.seconds")
        self._executor: ProcessPoolExecutor | None = None
        #: The object the current executor's workers were initialised
        #: with (via :meth:`starmap_shared`); ``None`` = no initializer.
        self._shared: object | None = None
        #: Global task ordinal (fault plans key injections off this).
        self._task_seq = itertools.count()
        self._rng = random.Random(seed)

    @property
    def payload_ships(self) -> int:
        """Times a shared object was delivered through an executor
        build (the ``pool.payload_ships`` counter).  For a handle-backed
        shipment each delivery is a few hundred bytes; for a plain
        object it is the full pickle.  A caller holding one shipment
        across runs sees this stay at 1.
        """
        return int(self._m_payload_ships.value)

    # -- lifecycle ---------------------------------------------------------

    def _executor_handle(self, shared=None) -> ProcessPoolExecutor:
        """The persistent executor, (re)built lazily.

        A plain call reuses whatever executor exists (workers ignore an
        installed shared object).  A call with ``shared`` requires the
        workers to have been initialised with *that* object; if the live
        executor was built without it (or with a different one), the
        executor is cycled.  Repeat runs with the same shared object —
        the cached portfolio kernel — therefore ship it zero times.

        A broken executor (a worker died mid-task) is also cycled, so a
        lost worker costs one call, not the pool's lifetime.  When
        ``shared`` is a handle-backed shipment that cycle re-sends
        handles, not the payload: fresh workers re-attach the still-live
        segments.
        """
        if self._executor is not None and (
            getattr(self._executor, "_broken", False)
            or (shared is not None and self._shared is not shared)
        ):
            self.close()
        if self._executor is None:
            self._shared = shared
            if shared is not None:
                self._m_payload_ships.inc()
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_workers,
                initializer=_install_shared if shared is not None else None,
                initargs=(shared,) if shared is not None else (),
            )
        return self._executor

    @property
    def started(self) -> bool:
        """Whether worker processes are currently live.

        Planners read this to decide whether a pooled substrate still
        owes its spawn cost or is warm and effectively free to enter.
        """
        return self._executor is not None

    def ensure_started(self, shared=None) -> None:
        """Pre-spawn the worker processes (idempotent warm-up).

        Worker spawn plus the one-time delivery of ``shared`` costs tens
        to hundreds of milliseconds — a latency-sensitive caller (the
        serving layer's pooled dispatcher) pays it here, outside any
        request's SLO window, instead of inside the first batch.  The
        executor alone is not enough — ``ProcessPoolExecutor`` forks
        lazily on submission — so a round of no-op barrier tasks forces
        the processes (and the ``shared`` initializer) to actually run
        now.  Serial pools (``n_workers == 1``) and degraded pools have
        nothing to start.
        """
        if self.n_workers > 1 and not self.health.degraded:
            executor = self._executor_handle(shared=shared)
            list(executor.map(_noop, range(self.n_workers)))

    def reset_health(self) -> None:
        """Forget failure history and leave degraded mode (operator path
        back to pooled execution once the underlying cause is fixed).
        The underlying registry counters stay monotone; only the
        :class:`PoolHealth` view is rebaselined to zero."""
        self.health.reset()

    def close(self) -> None:
        """Shut down worker processes (idempotent).

        A *broken* executor is shut down with ``wait=False`` and its
        pending futures cancelled: there are no live workers left to
        wait on, and joining a dead pool's manager thread while it still
        holds queued work is how a session ``close()`` used to hang.
        """
        if self._executor is not None:
            broken = bool(getattr(self._executor, "_broken", False))
            self._executor.shutdown(wait=not broken, cancel_futures=broken)
            self._executor = None
            self._shared = None

    def _abandon_executor(self) -> None:
        """Drop the executor without waiting (supervision's cycle path).

        Used when the pool is broken *or wedged past a deadline*: a
        worker stuck in a slow task must not be joined — the fresh
        executor takes over and the stragglers exit when their queue
        drains.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
            self._shared = None

    def __enter__(self) -> "WorkPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- mapping -----------------------------------------------------------

    def map(self, fn: Callable, items: Sequence,
            policy: TaskPolicy | None = None) -> list:
        """Apply ``fn`` to each item, preserving order (supervised)."""
        return self.starmap(fn, [(item,) for item in items], policy=policy)

    def starmap(self, fn: Callable, arg_tuples: Iterable[tuple],
                policy: TaskPolicy | None = None) -> list:
        """Apply ``fn(*args)`` per tuple, preserving order (supervised)."""
        tuples = list(arg_tuples)
        if self.n_workers == 1 or len(tuples) <= 1:
            return [fn(*args) for args in tuples]
        if self.health.degraded:
            self.health.degraded_calls += 1
            return [fn(*args) for args in tuples]
        return self._supervised(fn, None, tuples,
                                policy if policy is not None else self.policy)

    def starmap_shared(self, fn: Callable, shared,
                       arg_tuples: Iterable[tuple],
                       policy: TaskPolicy | None = None) -> list:
        """Apply ``fn(shared, *args)`` per tuple, preserving order.

        ``shared`` is delivered to each worker once through the pool
        initializer — not serialised per task — which is the right
        transport for a large read-only object fanned out over many small
        tasks (the multicore engine ships its stacked portfolio kernel
        this way: once per run at most, and zero times on repeat runs
        with the same cached kernel).  A ``shared`` exposing
        ``__shm_resolve__()`` is a shared-memory shipment: the
        initializer delivers only its handles and workers attach the
        payload as zero-copy views on first touch (serial pools resolve
        it inline, which shipments make free by pre-binding their local
        payload).  Supervision (retries, deadlines, degraded fallback)
        follows the module docstring's failure semantics.
        """
        tuples = list(arg_tuples)
        if self.n_workers == 1 or len(tuples) <= 1:
            local = _resolve(shared)
            return [fn(local, *args) for args in tuples]
        if self.health.degraded:
            self.health.degraded_calls += 1
            local = _resolve(shared)
            return [fn(local, *args) for args in tuples]
        return self._supervised(fn, shared, tuples,
                                policy if policy is not None else self.policy)

    # -- supervision -------------------------------------------------------

    def _submit_one(self, executor, fn, shared, args):
        """Submit one task attempt, applying any scheduled fault."""
        call = _call_shared if shared is not None else _call_plain
        spec = None
        plan = faults.active_plan()
        if plan is not None:
            spec = plan.take(next(self._task_seq))
        if spec is not None:
            self._m_faults_injected.inc()
            self.telemetry.event("fault.injected", kind=spec.kind,
                                 task_seq=spec.task_seq)
            return executor.submit(faults.apply_fault, spec, call, fn, *args)
        return executor.submit(call, fn, *args)

    def _backoff(self, policy: TaskPolicy, cycle: int) -> None:
        if policy.backoff_seconds <= 0:
            return
        delay = min(policy.backoff_seconds * (2 ** cycle), 1.0)
        delay *= 1.0 + policy.backoff_jitter * self._rng.random()
        time.sleep(delay)

    def _supervised(self, fn, shared, tuples, policy: TaskPolicy) -> list:
        """Run one batch under the supervision contract.

        Results are collected in submission order; a cycle keeps
        whatever finished and resubmits only the unfinished tasks, so a
        lost worker costs one re-execution of its in-flight tasks, never
        the whole sweep.
        """
        n = len(tuples)
        results: list = [None] * n
        pending = list(range(n))
        attempts = [0] * n
        failures: list[BaseException] = []
        cycle = 0
        self.health.calls += 1
        call_start = time.perf_counter()
        try:
            return self._supervised_loop(fn, shared, tuples, policy, results,
                                         pending, attempts, failures, cycle)
        finally:
            self._m_call_seconds.observe(time.perf_counter() - call_start)

    def _supervised_loop(self, fn, shared, tuples, policy, results, pending,
                         attempts, failures, cycle) -> list:
        while True:
            executor = self._executor_handle(shared=shared)
            futures = {}
            infra: BaseException | None = None
            for i in pending:
                attempts[i] += 1
                try:
                    futures[i] = self._submit_one(executor, fn, shared,
                                                  tuples[i])
                except BrokenExecutor as exc:
                    # Workers died during submission (e.g. killed at
                    # init): everything unsubmitted is lost this cycle.
                    self.health.worker_deaths += 1
                    failures.append(exc)
                    infra = exc
                    break
            start = time.perf_counter()
            still: list[int] = [i for i in pending if i not in futures]
            for i in pending:
                if i not in futures:
                    continue
                try:
                    if infra is not None:
                        # The executor is being abandoned; only harvest
                        # results that are already done.
                        timeout = 0.0
                    elif policy.deadline_seconds is None:
                        timeout = None
                    else:
                        timeout = max(
                            policy.deadline_seconds
                            - (time.perf_counter() - start), 0.0,
                        )
                    results[i] = futures[i].result(timeout=timeout)
                except (BrokenExecutor, _FuturesTimeout, TimeoutError) as exc:
                    if infra is None:
                        if isinstance(exc, BrokenExecutor):
                            self.health.worker_deaths += 1
                            infra = exc
                        else:
                            self.health.timeouts += 1
                            infra = TimeoutError(
                                f"batch deadline of "
                                f"{policy.deadline_seconds}s exceeded with "
                                f"{len(pending) - len(still)} tasks unfinished"
                            )
                        failures.append(infra)
                    futures[i].cancel()
                    still.append(i)
                except Exception as exc:
                    if not isinstance(exc, policy.retryable):
                        raise  # genuine task error: not supervision's to eat
                    self.health.task_faults += 1
                    failures.append(exc)
                    still.append(i)
            pending = still
            if not pending:
                self.health.record_success()
                return results
            exhausted = [i for i in pending
                         if attempts[i] > policy.max_retries]
            if exhausted:
                error = ExecutionError(
                    f"{len(exhausted)} task(s) failed terminally after "
                    f"{policy.max_retries} retr"
                    f"{'y' if policy.max_retries == 1 else 'ies'} "
                    f"(chain: {[type(f).__name__ for f in failures]})",
                    attempts=max(attempts[i] for i in exhausted),
                    failures=tuple(failures),
                )
                self.health.record_call_failure(error, self.degrade_after)
                if infra is not None:
                    self._abandon_executor()
                raise error
            self.health.retries += len(pending)
            if infra is not None:
                # Worker death or wedged batch: cycle the executor.  The
                # rebuild in the next loop iteration re-sends handles
                # only (see _executor_handle).
                self.health.executor_cycles += 1
                self._abandon_executor()
            self._backoff(policy, cycle)
            cycle += 1
