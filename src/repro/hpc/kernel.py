"""Kernel-launch abstraction for the simulated device.

A :class:`Kernel` is a Python function with the signature::

    fn(ctx: BlockContext, **buffers) -> None

launched over a 1-D grid of blocks.  Each block receives a
:class:`BlockContext` describing its row span and a per-block *shared
memory* arena with the device's real per-block capacity; the function
body operates on whole-block slices with vectorised NumPy — the moral
equivalent of a coalesced CUDA block where every thread handles one row.
Launch statistics (blocks, rows, shared-memory peaks) feed the chunking
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.errors import DeviceError
from repro.hpc.memory import MemorySpace

__all__ = ["BlockContext", "Kernel", "LaunchStats"]


@dataclass
class LaunchStats:
    """Execution record of one kernel launch."""

    kernel_name: str
    n_blocks: int = 0
    n_rows: int = 0
    shared_peak_bytes: int = 0
    launches: int = 1


class BlockContext:
    """Per-block execution context handed to kernel functions.

    Attributes
    ----------
    block_id:
        Index of this block within the launch grid.
    start, stop:
        Half-open global row span this block covers.
    shared:
        A :class:`MemorySpace` with the device's per-block shared-memory
        capacity; allocations exceeding it raise ``CapacityError`` exactly
        as oversubscribing CUDA shared memory fails at launch.
    constant:
        Read-only mapping of the device's constant-memory buffers.
    """

    __slots__ = ("block_id", "start", "stop", "shared", "constant")

    def __init__(self, block_id: int, start: int, stop: int,
                 shared: MemorySpace, constant: Mapping[str, np.ndarray]) -> None:
        self.block_id = block_id
        self.start = start
        self.stop = stop
        self.shared = shared
        self.constant = constant

    @property
    def n_rows(self) -> int:
        return self.stop - self.start

    def rows(self) -> slice:
        """Global row slice for this block (for indexing device buffers)."""
        return slice(self.start, self.stop)


@dataclass
class Kernel:
    """A named device function launched over a block grid.

    Attributes
    ----------
    name:
        Diagnostic name used in launch stats.
    fn:
        The block function; see module docstring for the contract.
    """

    name: str
    fn: Callable[..., None]
    stats: list[LaunchStats] = field(default_factory=list)

    def launch(
        self,
        n_rows: int,
        rows_per_block: int,
        shared_capacity_bytes: int,
        constant: Mapping[str, np.ndarray],
        **buffers: np.ndarray,
    ) -> LaunchStats:
        """Execute the kernel over ``ceil(n_rows / rows_per_block)`` blocks.

        ``buffers`` are device-resident arrays passed through to every
        block invocation.  Shared memory is allocated fresh per block and
        torn down after it — block-local lifetime, as on hardware.
        """
        if n_rows < 0:
            raise DeviceError(f"n_rows must be non-negative, got {n_rows}")
        if rows_per_block <= 0:
            raise DeviceError(f"rows_per_block must be positive, got {rows_per_block}")
        stats = LaunchStats(kernel_name=self.name)
        start = 0
        block_id = 0
        while start < n_rows:
            stop = min(start + rows_per_block, n_rows)
            shared = MemorySpace(f"shared[{self.name}:{block_id}]", shared_capacity_bytes)
            ctx = BlockContext(block_id, start, stop, shared, constant)
            self.fn(ctx, **buffers)
            stats.shared_peak_bytes = max(stats.shared_peak_bytes, shared.peak_bytes)
            shared.free_all()
            stats.n_blocks += 1
            stats.n_rows += stop - start
            start = stop
            block_id += 1
        self.stats.append(stats)
        return stats
