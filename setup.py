"""Packaging for the repro library.

Metadata lives here (classic setuptools) rather than in pyproject.toml
deliberately: this project targets fully offline environments, and a
``pyproject.toml`` build-system table forces pip into PEP-517 build
isolation, which tries to download setuptools/wheel.  With only
``setup.py`` present, ``pip install -e .`` uses the host's setuptools
and works without network access.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Data Challenges in High-Performance Risk "
        "Analytics' (SC 2012): the three-stage reinsurance risk-analytics "
        "pipeline with HPC and data-management substrates."
    ),
    long_description=open("README.md", encoding="utf-8").read(),
    long_description_content_type="text/markdown",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
