"""The full three-stage §II pipeline on synthetic data.

Stage 1 — catastrophe modelling: a stochastic event catalogue and a
clustered exposure database are pushed through the hazard /
vulnerability / financial modules to produce one ELT per contract.

Stage 2 — portfolio risk management: a pre-simulated Year-Event Table
re-plays 5,000 alternative contractual years against the layered book,
on two different engines (and checks they agree).

Stage 3 — dynamic financial analysis: the catastrophe YLT is combined
with the six §II risk sources under a Gaussian copula, and the
enterprise view (economic capital, diversification benefit) is printed.

Run:  python examples/full_pipeline.py
"""

import numpy as np

import repro
from repro.catmod import (
    CatModPipeline,
    assign_contracts,
    generate_catalog,
    generate_exposure,
    standard_perils,
)
from repro.catmod.geography import Region
from repro.dfa.correlation import GaussianCopula

rng = repro.RngHierarchy(2012)
region = Region(25.0, 33.0, -98.0, -80.0, name="gulf-coast")
perils = standard_perils()

# ---- Stage 1: risk modelling --------------------------------------------
print("=== Stage 1: catastrophe modelling ===")
catalog = generate_catalog(perils, region, n_events=1_000,
                           rng=rng.generator("catalog"))
exposure = generate_exposure(region, n_sites=3_000, rng=rng.generator("exposure"))
contracts = assign_contracts(exposure, n_contracts=12,
                             rng=rng.generator("contracts"))
elts, stats = CatModPipeline(perils).run(catalog, exposure, contracts)
print(f"catalogue: {catalog.n_events:,} events "
      f"({catalog.total_rate:.1f} expected occurrences/yr)")
print(f"exposure:  {exposure.n_sites:,} sites, "
      f"total insured value {exposure.total_value:,.0f}")
print(f"pipeline:  {stats.event_site_pairs:,} event-site pairs in "
      f"{stats.seconds:.2f}s ({stats.pairs_per_second:,.0f}/s)")
print(f"ELTs:      {len(elts)} contracts, "
      f"{sum(e.n_events for e in elts):,} total rows")
print()

# ---- Stage 2: portfolio risk management ---------------------------------
print("=== Stage 2: aggregate analysis ===")
yet = repro.YetTable.simulate(
    catalog.event_ids, catalog.rates, n_trials=5_000,
    rng=rng.generator("yet"),
)
terms = repro.LayerTerms(occ_retention=2e5, occ_limit=5e7,
                         agg_retention=5e5, agg_limit=5e8,
                         participation=0.85)
layers = [repro.Layer(i, [elts[2 * i], elts[2 * i + 1]], terms)
          for i in range(6)]
portfolio = repro.Portfolio(layers)
analysis = repro.AggregateAnalysis(portfolio, yet)

res_vec = analysis.run("vectorized")
res_dev = analysis.run("device")
agree = res_vec.portfolio_ylt.allclose(res_dev.portfolio_ylt)
print(f"YET: {yet.n_occurrences:,} occurrences over {yet.n_trials:,} trials "
      f"(~{yet.mean_events_per_trial():.0f} events/trial)")
print(f"vectorized engine: {res_vec.seconds * 1e3:.1f} ms; "
      f"device engine: {res_dev.seconds * 1e3:.1f} ms; agree: {agree}")
for lid, eal in sorted(res_vec.layer_expected_losses().items()):
    print(f"  layer {lid}: expected annual loss {eal:,.0f}")
print()

# ---- Stage 3: DFA / ERM ----------------------------------------------------
print("=== Stage 3: dynamic financial analysis ===")
cat_ylt = res_vec.portfolio_ylt
sources = repro.bench.dfa_workload(cat_ylt, seed=7)
ylts = [cat_ylt] + [s.ylt for s in sources]
names = ["catastrophe"] + [s.name for s in sources]
corr = GaussianCopula.uniform(len(ylts), 0.25).correlation
combined = repro.combine_ylts(ylts, "copula", correlation=corr,
                              rng=rng.generator("copula"))
print(f"combined {len(ylts)} risk YLTs under a Gaussian copula (rho=0.25)")
metrics = repro.RiskMetrics.from_ylt(combined)
print(repro.regulator_report(metrics, title="Enterprise book"))
print()

units = [repro.BusinessUnit(n, y) for n, y in zip(names, ylts)]
enterprise = repro.Enterprise(units)
cap = enterprise.economic_capital(q=0.99)
benefit = enterprise.diversification_benefit(q=0.99)
print(f"economic capital (TVaR99, trial-aligned): {cap:,.0f}")
print(f"diversification benefit:                  {benefit:.1%}")
