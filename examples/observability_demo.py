"""The telemetry plane: one scrape sees the whole request path.

A mixed workload — an aggregate run, a planned run, a burst of quotes
(some duplicated, so the cache earns its keep), and an EP curve — flows
through one :class:`RiskSession`.  Everything the session builds
(planner, dispatcher, pool, pricing service) shares the session's
:class:`~repro.obs.Telemetry` plane, so afterwards a single pull-based
scrape shows:

- the flat dot-keyed metric snapshot (requests, cache hits, batches,
  latency percentiles, engine rows swept);
- the span tree of the request path (session.plan → session.sweep,
  serve.batch → stack/dispatch/merge) with wall *and* CPU time;
- the structured event log (plan decisions, shed/degradation events);
- the same numbers rendered as standard Prometheus exposition text.

Run:  python examples/observability_demo.py
"""

import repro
from repro.serve import BatchPolicy
from repro.util.tables import render_table

workload = repro.bench.typical_contract_workload(n_trials=5_000)
base = workload.portfolio.layers[0]
mean_loss = 5e5

candidates = [
    repro.Layer(
        300 + i,
        base.elts,
        repro.LayerTerms(
            occ_retention=(1.0 + 0.5 * i) * mean_loss,
            occ_limit=40 * mean_loss,
            agg_retention=10 * mean_loss,
            agg_limit=3000 * mean_loss,
            participation=0.9,
        ),
    )
    for i in range(6)
]

with repro.RiskSession(workload.yet, workload.portfolio) as session:
    # A planned aggregate (emits a plan.decision event), a quote burst
    # with duplicates (cache hits), and an EP curve — one substrate.
    session.aggregate()
    svc = session.pricing_service(
        batch=BatchPolicy(max_batch=16, window_seconds=0.002))
    svc.quote_many(candidates)
    # Repeats of already-priced structures come straight from the
    # content-addressed cache — no sweep, just a hit counter bump.
    for layer in candidates[:3]:
        svc.quote(layer)
    svc.ep_curve(candidates[0])

    scrape = session.telemetry.snapshot()

    # ---- metrics: the flat dot-keyed schema -----------------------------
    print("=== metrics (selected) ===")
    metrics = scrape["metrics"]
    rows = [(name, f"{metrics[name]:.6g}") for name in sorted(metrics)
            if name.split(".")[0] in ("session", "serve", "planner")
            and not name.startswith("span.")]
    print(render_table(("metric", "value"), rows))

    # ---- spans: the request path, wall vs CPU ---------------------------
    print("\n=== spans (most recent 8) ===")
    spans = scrape["spans"][-8:]
    print(render_table(
        ("span", "parent", "wall ms", "cpu ms"),
        [(s["name"], s["parent_id"] or "-",
          f"{s['wall_seconds'] * 1e3:.2f}", f"{s['cpu_seconds'] * 1e3:.2f}")
         for s in spans],
    ))

    # ---- events: what happened, in order --------------------------------
    print("\n=== events ===")
    for event in scrape["events"]:
        fields = {k: v for k, v in event["fields"].items()
                  if k in ("workload", "engine", "reason")}
        print(f"  {event['at_seconds']:8.3f}s  {event['kind']:<18} {fields}")

    # ---- prometheus: the operator-facing export -------------------------
    print("\n=== prometheus exposition (first 12 lines) ===")
    for line in session.telemetry.to_prometheus_text().splitlines()[:12]:
        print("  " + line)

    served = int(metrics.get("serve.requests", 0))
    hits = int(metrics.get("serve.cache.hits", 0))
    batches = int(metrics.get("serve.batches", 0))
    print(f"\n{served} requests answered by {batches} fused sweeps "
          f"({hits} straight from cache); "
          f"p95 request latency "
          f"{metrics.get('serve.request.seconds.p95', 0.0) * 1e3:.2f} ms")
