"""Quickstart: price a reinsurance portfolio end to end in ~30 lines.

Builds a synthetic book (one layer over 15 ELTs, the companion study's
shape), simulates 20k trial years, and opens ONE :class:`repro.RiskSession`
over the trial set — the staged entry point every workload shares.  The
session plans the execution substrate (``engine="auto"`` through the HPC
cost model; the plan explains itself), runs the aggregate analysis, and
prints the regulator report (PML / VaR / TVaR ladders) of §II.

Run:  python examples/quickstart.py
"""

import repro

# A canonical workload: 1 layer x 15 ELTs, ~1000 events per trial year.
workload = repro.bench.companion_study_workload(n_trials=20_000)

# One session binds the YET ("a consistent lens through which to view
# results") once; aggregate runs, quotes, and EP curves all sweep data
# that is already staged.
with repro.RiskSession(workload.yet, workload.portfolio) as session:
    # Stage 2: aggregate analysis.  engine="auto" lets the cost-model
    # planner pick the substrate — and show its working.
    result = session.aggregate()
    print(result.details["plan"].explain())
    print()
    print(f"engine:               {result.engine}")
    print(f"trials simulated:     {result.portfolio_ylt.n_trials:,}")
    print(f"wall time:            {result.seconds * 1e3:.1f} ms")
    print(f"throughput:           {result.trials_per_second():,.0f} trials/s")
    print(f"expected annual loss: {result.expected_annual_loss():,.0f}")
    print()

    # The same staged trial set answers follow-on questions for free:
    # the whole EP surface costs one more sweep...
    curves, total = session.ep_curves()
    print(f"portfolio 1-in-100 loss: {total.loss_at_return_period(100):,.0f}")
    # ...and a quote against the same lens is a cache-backed sweep away.
    quote = session.quote(workload.portfolio.layers[0])
    print(f"layer technical premium: {quote.premium:,.0f} "
          f"({quote.latency_seconds * 1e3:.0f} ms quote latency)")
    print()

    # Stage 3: the §II metrics, reported regulator-style.
    metrics = repro.RiskMetrics.from_ylt(result.portfolio_ylt)
    print(repro.regulator_report(metrics, title="Quickstart portfolio"))
