"""Quickstart: price a reinsurance portfolio end to end in ~30 lines.

Builds a synthetic book (one layer over 15 ELTs, the companion study's
shape), simulates 20k trial years, runs aggregate analysis on the
vectorised engine, and prints the regulator report (PML / VaR / TVaR
ladders) of §II.

Run:  python examples/quickstart.py
"""

import repro

# A canonical workload: 1 layer x 15 ELTs, ~1000 events per trial year.
workload = repro.bench.companion_study_workload(n_trials=20_000)

# Stage 2: aggregate analysis (YET x portfolio -> YLT).
analysis = repro.AggregateAnalysis(workload.portfolio, workload.yet)
result = analysis.run("vectorized")

print(f"engine:               {result.engine}")
print(f"trials simulated:     {result.portfolio_ylt.n_trials:,}")
print(f"wall time:            {result.seconds * 1e3:.1f} ms")
print(f"throughput:           {result.trials_per_second():,.0f} trials/s")
print(f"expected annual loss: {result.expected_annual_loss():,.0f}")
print()

# Stage 3: the §II metrics, reported regulator-style.
metrics = repro.RiskMetrics.from_ylt(result.portfolio_ylt)
print(repro.regulator_report(metrics, title="Quickstart portfolio"))
