"""Treaty-desk features: secondary uncertainty, reinstatements, allocation.

Three extensions a production aggregate-analysis system layers on top of
the §II pipeline, demonstrated on one book:

1. **Secondary uncertainty** — occurrence losses sampled from the ELT's
   (mean, sigma) distribution instead of taken at the mean; through a
   convex excess layer this *raises* the expected ceded loss (Jensen),
   which is why pricing high layers in expected mode under-charges.
2. **Reinstatements** — the layer's occurrence limit is usable
   ``1 + n`` times per year; burned limit is bought back pro rata.
3. **Capital allocation** — Euler/co-TVaR attribution of the enterprise
   tail to the book's layers (allocations provably sum to the total).

Run:  python examples/treaty_features.py
"""

import numpy as np

import repro
from repro.core import (
    apply_reinstatement_limit,
    reinstatement_premiums,
    sampled_aggregate_analysis,
)
from repro.dfa.allocation import allocation_report_rows
from repro.util.tables import render_table

rng = repro.RngHierarchy(99)
wl = repro.bench.build_portfolio_workload(
    n_layers=4, n_trials=20_000, mean_events_per_trial=500.0,
    elts_per_layer=3, elt_rows=4_000, catalog_events=30_000, seed=21,
)
analysis = repro.AggregateAnalysis(wl.portfolio, wl.yet)

# ---- 1. expected mode vs sampled mode ------------------------------------
expected = analysis.run("vectorized")
sampled = sampled_aggregate_analysis(wl.portfolio, wl.yet,
                                     rng.generator("sampling"))
rows = []
for layer in wl.portfolio:
    e = expected.ylt_by_layer[layer.layer_id].mean()
    s = sampled[layer.layer_id].mean()
    rows.append([f"layer {layer.layer_id}", f"{e:,.0f}", f"{s:,.0f}",
                 f"{(s / e - 1):+.1%}"])
print(render_table(
    ["layer", "expected-mode EAL", "sampled-mode EAL", "Jensen uplift"],
    rows,
    title="Secondary uncertainty: pricing an excess layer at the mean under-charges",
))
print()

# ---- 2. reinstatements ------------------------------------------------------
layer = wl.portfolio.layers[0]
res = analysis.run("vectorized", emit_yelt=True)
yelt = res.yelt_by_layer[layer.layer_id]
occ_limit = layer.terms.occ_limit
rows = []
for n_reinst in (0, 1, 2, 5):
    limited = apply_reinstatement_limit(yelt, occ_limit, n_reinst)
    ceded = limited.to_ylt().mean()
    premiums = reinstatement_premiums(yelt, limited, occ_limit,
                                      rate_on_line=0.15,
                                      n_reinstatements=n_reinst)
    rows.append([n_reinst, f"{ceded:,.0f}", f"{premiums.mean():,.0f}",
                 f"{(ceded - premiums.mean()):,.0f}"])
print(render_table(
    ["reinstatements", "ceded EAL", "reinst. premium income", "net cost"],
    rows,
    title=f"Reinstatement structures on layer 0 (occ limit {occ_limit:,.0f})",
))
print()

# ---- 3. capital allocation ---------------------------------------------------
unit_ylts = {
    f"layer {lid}": ylt for lid, ylt in expected.ylt_by_layer.items()
}
print(render_table(
    ["unit", "standalone TVaR99", "allocated capital", "diversification"],
    allocation_report_rows(unit_ylts, q=0.99),
    title="Euler/co-TVaR capital allocation across the book",
))
total_alloc = sum(
    v for v in repro.dfa.co_tvar_allocation(unit_ylts, 0.99).values()
)
combined = repro.YltTable.sum(list(unit_ylts.values()))
print(f"\nallocations sum to {total_alloc:,.0f} "
      f"= enterprise TVaR99 {repro.tail_value_at_risk(combined, 0.99):,.0f}")
