"""Real-time layer pricing — the §II "25 seconds → real-time" workflow.

An underwriter considers several attachment points for a new excess-of-
loss layer.  All candidates are priced through one
:class:`repro.RiskSession` over the shared, pre-simulated YET ("a
consistent lens through which to view results"): the session stages the
trial set once, coalesces the what-if sweep into a single stacked-kernel
pass, and the same staged substrate then answers the follow-up EP-curve
question without re-binding anything — the workflow the paper argues
becomes *real-time* once a million-trial simulation takes tens of
seconds.

Run:  python examples/realtime_pricing.py
"""

import time

import repro
from repro.util.tables import render_table

# The shared trial set and a candidate book (one contract's ELT).
workload = repro.bench.typical_contract_workload(n_trials=100_000)
base_layer = workload.portfolio.layers[0]

# Candidate structures: rising attachment, fixed limit.
mean_loss = 5e5
candidates = []
for i, retention_multiple in enumerate((1.0, 2.0, 4.0, 8.0, 16.0)):
    terms = repro.LayerTerms(
        occ_retention=retention_multiple * mean_loss,
        occ_limit=40 * mean_loss,
        agg_retention=10 * mean_loss,
        agg_limit=3000 * mean_loss,
        participation=0.9,
    )
    candidates.append(repro.Layer(100 + i, base_layer.elts, terms))

with repro.RiskSession(workload.yet, workload.portfolio) as session:
    # A session is long-lived: its one-off startup (worker spawn, YET
    # staging/fingerprinting) is paid before the first client, not per
    # quote.  warmup() makes that explicit.
    session.warmup()

    t0 = time.perf_counter()
    quotes = session.quote_many(candidates)   # ONE coalesced sweep
    sweep_wall = time.perf_counter() - t0

    rows = []
    for layer, quote in zip(candidates, quotes):
        rows.append([
            f"{layer.terms.occ_retention:,.0f}",
            f"{quote.expected_loss:,.0f}",
            f"{quote.premium:,.0f}",
            f"{quote.rate_on_line:.2%}",
            f"{quote.latency_seconds * 1e3:.0f} ms",
            f"{quote.trials_per_second:,.0f}",
        ])
    print(render_table(
        ["attachment", "expected loss", "premium", "rate-on-line",
         "quote latency", "trials/s"],
        rows,
        title=f"What-if pricing over {workload.yet.n_trials:,} shared trials",
    ))

    # quote_many coalesces every candidate into ONE stacked-kernel sweep
    # via the serving layer, so the wall time for all five is roughly one
    # YET pass — per-quote latencies overlap rather than add.
    per_million = sweep_wall * (1_000_000 / workload.yet.n_trials)
    print(f"\n{len(candidates)} structures quoted in {sweep_wall:.1f}s wall;")
    print(f"extrapolated 1M-trial sweep of all five: {per_million:.1f}s "
          "(paper: ~25 s for ONE structure on a 2012 GPU)")

    # The chosen structure's tail, off the same staged trial set: a
    # cached EP curve, not a new binding.
    curve = session.ep_curve(candidates[2])
    print(f"\nchosen structure 1-in-250 loss: "
          f"{curve.loss_at_return_period(250):,.0f}")
