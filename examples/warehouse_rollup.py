"""Slice-and-dice portfolio analytics on the pre-aggregated loss cube.

§II's stage-3 remedy for terabyte-scale YLT collections is
pre-computation "such as in parallel data warehousing".  This example
builds a dimensioned fact table (line-of-business × region × peril),
materialises the loss cube once, and then answers a battery of
slice queries (PML per line of business, TVaR per region) at
interactive latency — comparing each against recomputation from the
base table.

Run:  python examples/warehouse_rollup.py
"""

import time

import numpy as np

from repro.bench.workloads import warehouse_fact_table
from repro.data.warehouse import LossCube
from repro.util.tables import format_bytes, render_table

N_TRIALS = 20_000
facts = warehouse_fact_table(n_trials=N_TRIALS, rows_per_trial=25,
                             n_lobs=4, n_regions=6, n_perils=4)
print(f"fact table: {facts.n_rows:,} rows ({format_bytes(facts.nbytes)})")

t0 = time.perf_counter()
cube = LossCube(facts, dims=("lob", "region", "peril"), n_trials=N_TRIALS)
build_s = time.perf_counter() - t0
print(f"cube: {cube.n_cells} cells, {format_bytes(cube.nbytes)}, "
      f"built in {build_s * 1e3:.0f} ms\n")

LOB_NAMES = {0: "property", 1: "marine", 2: "energy", 3: "casualty"}

cube.pml(250.0, {"lob": 0})  # warm the query path before timing

rows = []
for lob in range(4):
    t0 = time.perf_counter()
    pml250 = cube.pml(250.0, {"lob": lob})
    tvar99 = cube.tvar(0.99, {"lob": lob})
    q_ms = (time.perf_counter() - t0) * 1e3

    # the same answer recomputed from the base table
    t0 = time.perf_counter()
    mask = facts["lob"] == lob
    losses = np.zeros(N_TRIALS)
    np.add.at(losses, facts["trial"][mask], facts["loss"][mask])
    check = float(np.quantile(losses, 1 - 1 / 250.0))
    scan_ms = (time.perf_counter() - t0) * 1e3

    assert abs(check - pml250) < 1e-6 * max(abs(check), 1.0)
    rows.append([LOB_NAMES[lob], f"{pml250:,.0f}", f"{tvar99:,.0f}",
                 f"{q_ms:.2f} ms", f"{scan_ms:.2f} ms",
                 f"{scan_ms / q_ms:.1f}x"])

print(render_table(
    ["line of business", "PML 250y", "TVaR 99%", "cube query",
     "full rescan", "speedup"],
    rows,
    title="Per-LoB tail metrics: pre-aggregated cube vs base-table rescan",
))

# A finer slice: marine losses from peril 2 in region 1.
fine = cube.pml(100.0, {"lob": 1, "peril": 2, "region": 1})
print(f"\nPML 100y for lob=marine, peril=2, region=1: {fine:,.0f}")
