"""The serving layer: many concurrent quote requests, few fused sweeps.

Four "underwriter" threads hammer one shared :class:`PricingService`
with candidate excess-of-loss structures — some unique, some duplicates
of structures a colleague already asked about.  The broker thread holds
each request for a few milliseconds of batch window, stacks everything
in flight into one ephemeral portfolio kernel, and prices the batch in
a single YET pass; repeat structures come straight from the
content-addressed cache without any sweep at all.

Run:  python examples/serving_demo.py
"""

import threading
import time

import numpy as np

import repro
import repro.errors
from repro.serve import BatchPolicy
from repro.util.tables import render_table

N_THREADS = 4
REQUESTS_PER_THREAD = 24

# The shared trial set and contract book (the "consistent lens").
workload = repro.bench.typical_contract_workload(n_trials=20_000)
base_layer = workload.portfolio.layers[0]
mean_loss = 5e5

# A menu of candidate structures.  Threads pick overlapping subsets, so
# the same structure is quoted by more than one underwriter — cache food.
menu = [
    repro.Layer(
        200 + i,
        base_layer.elts,
        repro.LayerTerms(
            occ_retention=(1.0 + 0.75 * i) * mean_loss,
            occ_limit=40 * mean_loss,
            agg_retention=10 * mean_loss,
            agg_limit=3000 * mean_loss,
            participation=0.9,
        ),
    )
    for i in range(12)
]

service = repro.PricingService(
    workload.yet,
    batch=BatchPolicy(max_batch=64, window_seconds=0.005, auto_flush=True),
    slo_seconds=30.0,
)
# One warm quote calibrates the admission controller's throughput
# estimate from a real sweep (the seed estimate is deliberately
# conservative, so a cold burst would be shed).
service.quote(menu[0])

quotes_by_thread: dict[int, list] = {}
shed_retries = [0] * N_THREADS


def underwriter(tid: int) -> None:
    rng = np.random.default_rng(tid)
    picks = rng.integers(0, len(menu), size=REQUESTS_PER_THREAD)
    tickets = []
    for i in picks:
        while True:
            try:
                tickets.append(service.submit(menu[i]))
                break
            except repro.errors.AdmissionError:
                # Backpressure: the service says "not now" — wait out
                # roughly one batch and retry.
                shed_retries[tid] += 1
                time.sleep(0.05)
    quotes_by_thread[tid] = [t.result(timeout=60.0) for t in tickets]


threads = [threading.Thread(target=underwriter, args=(tid,))
           for tid in range(N_THREADS)]
for t in threads:
    t.start()
for t in threads:
    t.join()

stats = service.stats
latencies = np.array([
    q.latency_seconds for quotes in quotes_by_thread.values() for q in quotes
])

rows = [
    ["requests submitted", f"{stats.requests:,}"],
    ["answered from cache", f"{stats.cache_hits:,} "
     f"({service.cache.stats.hit_rate:.0%} hit rate)"],
    ["fused YET sweeps", f"{stats.sweeps:,}"],
    ["requests per sweep", f"{stats.coalescing_factor:.1f}"],
    ["kernel rows stacked", f"{stats.kernel_rows:,}"],
    ["quote latency p50", f"{np.percentile(latencies, 50) * 1e3:.1f} ms"],
    ["quote latency p95", f"{np.percentile(latencies, 95) * 1e3:.1f} ms"],
    ["requests shed then retried", f"{sum(shed_retries):,}"],
]
print(render_table(
    ["quantity", "value"], rows,
    title=f"{N_THREADS} underwriters x {REQUESTS_PER_THREAD} quotes over "
          f"{workload.yet.n_trials:,} shared trials",
))

print(
    f"\n{stats.requests} concurrent requests cost {stats.sweeps} YET "
    f"pass(es) — the pre-serve pricer would have run {stats.requests}."
)
service.close()
