"""Aggregate analysis over "large distributed file space" (MapReduce).

§II's second strategy: when the YET outgrows memory, store it in a
distributed file system and run the analysis Hadoop-style.  This example
writes the YET into the simulated DFS (block-aligned packed batches),
runs the analysis as a MapReduce job, verifies the result against the
in-memory engine, and shows the simulated worker-count scaling and a
datanode failure + re-replication.

Run:  python examples/mapreduce_portfolio.py
"""

import repro
from repro.core.engines import MapReduceEngine
from repro.data.dfs import SimDfs
from repro.util.tables import format_bytes, render_table

workload = repro.bench.companion_study_workload(n_trials=20_000)
analysis = repro.AggregateAnalysis(workload.portfolio, workload.yet)

# ---- run the job ----------------------------------------------------------
dfs = SimDfs(n_datanodes=8, replication=3)
engine = MapReduceEngine(dfs=dfs, n_splits=16, n_reducers=8)
res_mr = analysis.run(engine)
res_ref = analysis.run("vectorized")
print(f"MapReduce YLT equals in-memory YLT: "
      f"{res_mr.portfolio_ylt.allclose(res_ref.portfolio_ylt)}")
print(f"DFS holds {format_bytes(dfs.total_stored_bytes())} "
      f"across {dfs.n_live_nodes} datanodes (3x replication)")

layer_id = workload.portfolio.layers[0].layer_id
counters = res_mr.details["counters"][layer_id]
print(f"map input records:  {counters['map_input_records']:,}")
print(f"reduce groups:      {counters['reduce_input_groups']:,}")
print()

# ---- simulated worker scaling ----------------------------------------------
job = engine.last_jobs[layer_id]
rows = []
base = job.makespan(1)
for w in (1, 2, 4, 8, 16):
    mk = job.makespan(w)
    rows.append([w, f"{mk * 1e3:.0f} ms", f"{base / mk:.2f}x",
                 f"{base / mk / w:.2f}"])
print(render_table(["workers", "makespan", "speedup", "efficiency"], rows,
                   title="Worker scaling (LPT makespan over measured tasks)"))
print()

# ---- failure injection -------------------------------------------------------
print("killing datanode 3 ...")
dfs.kill_node(3)
created = dfs.re_replicate()
print(f"re-replication created {created} new replicas; "
      f"{dfs.n_live_nodes} datanodes live")
res_after = analysis.run(engine)
print(f"job result unchanged after failure: "
      f"{res_after.portfolio_ylt.allclose(res_ref.portfolio_ylt)}")
